package minilang

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Unit tests for the resolver and the closure compiler (resolve.go,
// compile.go, frame.go): slot assignment, scope shadowing, closure
// capture, escape analysis and the engine plumbing on CompiledFunc.

func compiledCall(t *testing.T, src string, args map[string]any) any {
	t.Helper()
	cf, err := CompileFunction(src, "f")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cf.Prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if got := cf.Engine(); got != "compiled" {
		t.Fatalf("Engine() = %q, want compiled", got)
	}
	v, err := cf.Call(context.Background(), args)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return v
}

func TestCompiledShadowingSlots(t *testing.T) {
	v := compiledCall(t, `export function f({x}: {x: number}): any {
  const out = [];
  let v = x;
  out.push(v);
  {
    let v = x * 2;
    out.push(v);
    {
      v = v + 1;
      let v = x * 3;
      out.push(v);
    }
    out.push(v);
  }
  out.push(v);
  return out;
}`, map[string]any{"x": 1})
	want := []any{1.0, 2.0, 3.0, 3.0, 1.0}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("shadowing = %v, want %v", v, want)
	}
}

func TestCompiledParamShadowedByLocal(t *testing.T) {
	// The body block is a separate scope from the parameter scope, so a
	// let of the same name shadows the parameter, as in the tree-walker.
	v := compiledCall(t, `export function f({x}: {x: number}): number {
  let x = 42;
  return x;
}`, map[string]any{"x": 1})
	if v != 42.0 {
		t.Errorf("shadowed param = %v, want 42", v)
	}
}

func TestCompiledClosureCapturesIterationVariable(t *testing.T) {
	// for..of binds a fresh slot frame per iteration; each closure must
	// capture its own value.
	v := compiledCall(t, `export function f({}: {}): any {
  const fns = [];
  for (const x of [10, 20, 30]) { fns.push(() => x); }
  const out = [];
  for (const g of fns) { out.push(g()); }
  return out;
}`, map[string]any{})
	want := []any{10.0, 20.0, 30.0}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("captured values = %v, want %v", v, want)
	}
}

func TestCompiledClosureSharesLoopVariableOfForLet(t *testing.T) {
	// The classic for statement creates ONE loop scope (matching the
	// tree-walker, which is JS-var-like here): closures share the slot.
	v := compiledCall(t, `export function f({}: {}): any {
  const fns = [];
  for (let i = 0; i < 3; i++) { fns.push(() => i); }
  return fns.map((g) => g());
}`, map[string]any{})
	want := []any{3.0, 3.0, 3.0}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("shared loop variable = %v, want %v", v, want)
	}
}

func TestCompiledClosureMutatesOuterSlot(t *testing.T) {
	v := compiledCall(t, `export function f({n}: {n: number}): number {
  let total = 0;
  const add = (k) => { total += k; };
  for (let i = 1; i <= n; i++) { add(i); }
  return total;
}`, map[string]any{"n": 4})
	if v != 10.0 {
		t.Errorf("closure mutation = %v, want 10", v)
	}
}

func TestCompiledSpreadAndDestructuring(t *testing.T) {
	v := compiledCall(t, `export function f({xs}: {xs: number[]}): any {
  const copy = [...xs, ...[100]];
  const max = Math.max(...xs);
  return {copy, max};
}`, map[string]any{"xs": []any{4.0, 7.0, 2.0}})
	want := map[string]any{"copy": []any{4.0, 7.0, 2.0, 100.0}, "max": 7.0}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("spread = %v, want %v", v, want)
	}
}

func TestCompiledNamedParamDestructuring(t *testing.T) {
	// The AskIt calling convention: a single destructured object
	// parameter, bound directly to slots by the entry path.
	cf, err := CompileFunction(`export function f({a, b, c}: {a: number, b: string, c: boolean}): string {
  return b + (c ? a * 2 : a);
}`, "f")
	if err != nil {
		t.Fatal(err)
	}
	v, err := cf.Call(context.Background(), map[string]any{"a": 5, "b": "x=", "c": true})
	if err != nil {
		t.Fatal(err)
	}
	if v != "x=10" {
		t.Errorf("named params = %v, want x=10", v)
	}
	// A missing argument is the same error the tree-walker raises.
	_, err = cf.Call(context.Background(), map[string]any{"a": 5, "b": "x="})
	if err == nil || !strings.Contains(err.Error(), `missing argument "c"`) {
		t.Errorf("missing argument error = %v", err)
	}
}

func TestCompiledTreeWalkerSwitch(t *testing.T) {
	cf, err := CompileFunction(`export function f({n}: {n: number}): number { return n + 1; }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	cf.TreeWalker = true
	if got := cf.Engine(); got != "tree-walker" {
		t.Errorf("Engine() = %q, want tree-walker", got)
	}
	v, err := cf.Call(context.Background(), map[string]any{"n": 1})
	if err != nil || v != 2.0 {
		t.Errorf("tree-walker call = %v, %v", v, err)
	}
	cf.TreeWalker = false
	if got := cf.Engine(); got != "compiled" {
		t.Errorf("Engine() = %q, want compiled", got)
	}
	v, err = cf.Call(context.Background(), map[string]any{"n": 1})
	if err != nil || v != 2.0 {
		t.Errorf("compiled call = %v, %v", v, err)
	}
}

func TestCompiledHostBindings(t *testing.T) {
	cf, err := CompileFunction(`export function f({s}: {s: string}): string { return readFile(s); }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	cf.Hosts = map[string]any{
		"readFile": &Builtin{Name: "readFile", Fn: func(_ *Interp, args []any) (any, error) {
			return strings.ToUpper(ToString(args[0])) + "!", nil
		}},
	}
	v, err := cf.Call(context.Background(), map[string]any{"s": "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "HI!" {
		t.Errorf("host binding = %v, want HI!", v)
	}
}

func TestCompiledFuelBudget(t *testing.T) {
	cf, err := CompileFunction(`export function f({}: {}): number {
  let i = 0;
  while (true) { i++; }
  return i;
}`, "f")
	if err != nil {
		t.Fatal(err)
	}
	cf.MaxSteps = 1000
	_, err = cf.Call(context.Background(), map[string]any{})
	if err == nil || !strings.Contains(err.Error(), ErrFuel) {
		t.Errorf("fuel error = %v", err)
	}
}

func TestCompiledModuleStateIsolation(t *testing.T) {
	// A mutable top-level binding makes the module non-static: each call
	// must observe a fresh module frame, like the tree-walker.
	cf, err := CompileFunction(`let counter = 0;
export function f({}: {}): number { counter = counter + 1; return counter; }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := cf.Call(context.Background(), map[string]any{})
		if err != nil {
			t.Fatal(err)
		}
		if v != 1.0 {
			t.Fatalf("call %d: counter = %v, want 1 (fresh module per call)", i, v)
		}
	}
}

func TestCompiledStaticModuleDetection(t *testing.T) {
	pure, err := CompileFunction(`function helper(x) { return x + 1; }
export function f({n}: {n: number}): number { return helper(n); }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := pure.Prepare(); err != nil {
		t.Fatal(err)
	}
	if !pure.prepared.static {
		t.Error("all-function module should be static")
	}
	mutating, err := CompileFunction(`function bump() { f = f; return 1; }
export function f({}: {}): number { return bump(); }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := mutating.Prepare(); err != nil {
		t.Fatal(err)
	}
	if mutating.prepared.static {
		t.Error("module-binding assignment should defeat static sharing")
	}
}

func TestCompiledGlobalEscapeAnalysis(t *testing.T) {
	// Reading globals as member/call bases keeps a program on the
	// compiled engine; letting a global container escape declines it.
	compiled := []string{
		`export function f({x}: {x: number}): number { return Math.floor(x) + Math.PI; }`,
		`export function f({s}: {s: string}): any { return JSON.parse(JSON.stringify({s})); }`,
		`export function f({x}: {x: number}): any { return [parseInt("42"), Number.isInteger(x)]; }`,
	}
	declined := []string{
		`export function f({}: {}): any { Math.x = 1; return Math.x; }`,
		`export function f({}: {}): any { const m = Math; return m; }`,
		`export function f({o}: {o: any}): any { return Object.assign(Object, o); }`,
	}
	for _, src := range compiled {
		cf, err := CompileFunction(src, "f")
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := cf.Engine(); got != "compiled" {
			t.Errorf("Engine() = %q for %s, want compiled", got, src)
		}
	}
	for _, src := range declined {
		cf, err := CompileFunction(src, "f")
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := cf.Engine(); got != "tree-walker" {
			t.Errorf("Engine() = %q for %s, want tree-walker", got, src)
		}
	}
}

func TestCompiledSteadyStateAllocations(t *testing.T) {
	cf, err := CompileFunction(`export function f({n}: {n: number}): number {
  let result = 0;
  for (let i = 0; i < n; i++) { result = result + i; }
  return result;
}`, "f")
	if err != nil {
		t.Fatal(err)
	}
	args := map[string]any{"n": 10.0}
	// Warm up pools and the prepared program.
	if _, err := cf.Call(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := cf.Call(context.Background(), args); err != nil {
			t.Fatal(err)
		}
	})
	// The seed tree-walker costs >150 allocations for this call. The
	// compiled engine should be well under 20 (pooled frames, interned
	// small numbers; the few remaining are interface boxing).
	if allocs > 20 {
		t.Errorf("steady-state Call allocates %.0f times, want <= 20", allocs)
	}
}

func TestCompiledResolverCandidates(t *testing.T) {
	// A hoisted function name that is still unbound at run time falls
	// through to an outer binding — the dynamic-lookup semantics of the
	// tree-walker, emulated with candidate slots.
	v := compiledCall(t, `function pick() { return "outer"; }
export function f({}: {}): any {
  const got = [];
  function probe() { return pick(); }
  got.push(probe());
  return got;
}`, map[string]any{})
	if !reflect.DeepEqual(v, []any{"outer"}) {
		t.Errorf("candidate fallthrough = %v", v)
	}
}

func TestCompiledConcurrentCalls(t *testing.T) {
	cf, err := CompileFunction(`function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
export function f({n}: {n: number}): number { return fib(n); }`, "f")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				v, err := cf.Call(context.Background(), map[string]any{"n": 10.0})
				if err != nil {
					done <- err
					return
				}
				if v != 55.0 {
					done <- fmt.Errorf("fib(10) = %v, want 55", v)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
