package minilang

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/jsonx"
)

// member resolves property reads (not method calls) on a value.
func (in *Interp) member(obj any, name string, at Pos) (any, error) {
	switch x := obj.(type) {
	case *Array:
		if name == "length" {
			return float64(len(x.Elems)), nil
		}
	case string:
		if name == "length" {
			return float64(len([]rune(x))), nil
		}
	case map[string]any:
		return x[name], nil
	case *CallableObj:
		if v, ok := x.Props[name]; ok {
			return v, nil
		}
	case *SetVal:
		if name == "size" {
			return float64(x.Len()), nil
		}
	case *MapVal:
		if name == "size" {
			return float64(x.Len()), nil
		}
	case nil:
		return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("cannot read property %q of null", name)}
	}
	return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("unknown property %q on %s", name, TypeOf(obj))}
}

// callMethod dispatches a method call on a receiver. The bool result
// reports whether the (receiver kind, name) pair names a built-in method.
func (in *Interp) callMethod(recv any, name string, args []any, at Pos) (any, bool, error) {
	switch x := recv.(type) {
	case *Array:
		return in.arrayMethod(x, name, args, at)
	case string:
		return stringMethod(x, name, args, at)
	case *SetVal:
		return setMethod(x, name, args)
	case *MapVal:
		return mapMethod(x, name, args)
	case map[string]any:
		if v, ok := x[name]; ok {
			switch v.(type) {
			case *Closure, *compiledClosure, *Builtin:
				out, err := in.Call(v, args, at)
				return out, true, err
			}
		}
		switch name {
		case "hasOwnProperty":
			if len(args) == 1 {
				_, ok := x[ToString(args[0])]
				return ok, true, nil
			}
		case "toString":
			return ToString(x), true, nil
		}
		return nil, false, nil
	case float64:
		switch name {
		case "toFixed":
			digits := 0
			if len(args) > 0 {
				digits = int(ToNumber(args[0]))
			}
			return strconv.FormatFloat(x, 'f', digits, 64), true, nil
		case "toString":
			return formatNum(x), true, nil
		}
		return nil, false, nil
	}
	return nil, false, nil
}

func (in *Interp) arrayMethod(arr *Array, name string, args []any, at Pos) (any, bool, error) {
	argN := func(i int) float64 {
		if i < len(args) {
			return ToNumber(args[i])
		}
		return 0
	}
	switch name {
	case "push":
		arr.Elems = append(arr.Elems, args...)
		return float64(len(arr.Elems)), true, nil
	case "pop":
		if len(arr.Elems) == 0 {
			return nil, true, nil
		}
		v := arr.Elems[len(arr.Elems)-1]
		arr.Elems = arr.Elems[:len(arr.Elems)-1]
		return v, true, nil
	case "shift":
		if len(arr.Elems) == 0 {
			return nil, true, nil
		}
		v := arr.Elems[0]
		arr.Elems = arr.Elems[1:]
		return v, true, nil
	case "unshift":
		arr.Elems = append(append([]any{}, args...), arr.Elems...)
		return float64(len(arr.Elems)), true, nil
	case "slice":
		start, end := sliceBounds(len(arr.Elems), args)
		out := append([]any(nil), arr.Elems[start:end]...)
		return &Array{Elems: out}, true, nil
	case "splice":
		start := clampIndex(int(argN(0)), len(arr.Elems))
		count := len(arr.Elems) - start
		if len(args) > 1 {
			count = int(argN(1))
		}
		if count < 0 {
			count = 0
		}
		if start+count > len(arr.Elems) {
			count = len(arr.Elems) - start
		}
		removed := append([]any(nil), arr.Elems[start:start+count]...)
		var inserted []any
		if len(args) > 2 {
			inserted = args[2:]
		}
		tail := append([]any(nil), arr.Elems[start+count:]...)
		arr.Elems = append(arr.Elems[:start], append(inserted, tail...)...)
		return &Array{Elems: removed}, true, nil
	case "concat":
		out := append([]any(nil), arr.Elems...)
		for _, a := range args {
			if other, ok := a.(*Array); ok {
				out = append(out, other.Elems...)
			} else {
				out = append(out, a)
			}
		}
		return &Array{Elems: out}, true, nil
	case "indexOf":
		for i, e := range arr.Elems {
			if len(args) > 0 && StrictEqual(e, args[0]) {
				return float64(i), true, nil
			}
		}
		return -1.0, true, nil
	case "lastIndexOf":
		for i := len(arr.Elems) - 1; i >= 0; i-- {
			if len(args) > 0 && StrictEqual(arr.Elems[i], args[0]) {
				return float64(i), true, nil
			}
		}
		return -1.0, true, nil
	case "includes":
		for _, e := range arr.Elems {
			if len(args) > 0 && StrictEqual(e, args[0]) {
				return true, true, nil
			}
		}
		return false, true, nil
	case "join":
		sep := ","
		if len(args) > 0 {
			sep = ToString(args[0])
		}
		parts := make([]string, len(arr.Elems))
		for i, e := range arr.Elems {
			if e != nil {
				parts[i] = ToString(e)
			}
		}
		return strings.Join(parts, sep), true, nil
	case "reverse":
		for i, j := 0, len(arr.Elems)-1; i < j; i, j = i+1, j-1 {
			arr.Elems[i], arr.Elems[j] = arr.Elems[j], arr.Elems[i]
		}
		return arr, true, nil
	case "sort":
		var sortErr error
		if len(args) == 1 {
			cmp := args[0]
			sort.SliceStable(arr.Elems, func(i, j int) bool {
				if sortErr != nil {
					return false
				}
				v, err := in.Call(cmp, []any{arr.Elems[i], arr.Elems[j]}, at)
				if err != nil {
					sortErr = err
					return false
				}
				return ToNumber(v) < 0
			})
		} else {
			// JS default sort: by string representation.
			sort.SliceStable(arr.Elems, func(i, j int) bool {
				return ToString(arr.Elems[i]) < ToString(arr.Elems[j])
			})
		}
		return arr, true, sortErr
	case "map":
		out := make([]any, len(arr.Elems))
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			out[i] = v
		}
		return &Array{Elems: out}, true, nil
	case "filter":
		var out []any
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if Truthy(v) {
				out = append(out, e)
			}
		}
		return &Array{Elems: out}, true, nil
	case "forEach":
		for i, e := range arr.Elems {
			if _, err := in.callIter(args, []any{e, float64(i), arr}, at); err != nil {
				return nil, true, err
			}
		}
		return nil, true, nil
	case "reduce":
		var acc any
		start := 0
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(arr.Elems) == 0 {
				return nil, true, &RuntimeError{Pos: at, Msg: "reduce of empty array with no initial value"}
			}
			acc = arr.Elems[0]
			start = 1
		}
		for i := start; i < len(arr.Elems); i++ {
			v, err := in.callIter(args, []any{acc, arr.Elems[i], float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			acc = v
		}
		return acc, true, nil
	case "some":
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if Truthy(v) {
				return true, true, nil
			}
		}
		return false, true, nil
	case "every":
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if !Truthy(v) {
				return false, true, nil
			}
		}
		return true, true, nil
	case "find":
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if Truthy(v) {
				return e, true, nil
			}
		}
		return nil, true, nil
	case "findIndex":
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if Truthy(v) {
				return float64(i), true, nil
			}
		}
		return -1.0, true, nil
	case "flat":
		depth := 1
		if len(args) > 0 {
			depth = int(ToNumber(args[0]))
		}
		return &Array{Elems: flatten(arr.Elems, depth)}, true, nil
	case "flatMap":
		var out []any
		for i, e := range arr.Elems {
			v, err := in.callIter(args, []any{e, float64(i), arr}, at)
			if err != nil {
				return nil, true, err
			}
			if sub, ok := v.(*Array); ok {
				out = append(out, sub.Elems...)
			} else {
				out = append(out, v)
			}
		}
		return &Array{Elems: out}, true, nil
	case "fill":
		var v any
		if len(args) > 0 {
			v = args[0]
		}
		for i := range arr.Elems {
			arr.Elems[i] = v
		}
		return arr, true, nil
	case "keys":
		out := make([]any, len(arr.Elems))
		for i := range arr.Elems {
			out[i] = float64(i)
		}
		return &Array{Elems: out}, true, nil
	case "at":
		i := int(argN(0))
		if i < 0 {
			i += len(arr.Elems)
		}
		if i < 0 || i >= len(arr.Elems) {
			return nil, true, nil
		}
		return arr.Elems[i], true, nil
	case "toString":
		return ToString(arr), true, nil
	}
	return nil, false, nil
}

func (in *Interp) callIter(args, iterArgs []any, at Pos) (any, error) {
	if len(args) == 0 {
		return nil, &RuntimeError{Pos: at, Msg: "missing callback argument"}
	}
	return in.Call(args[0], iterArgs, at)
}

func flatten(elems []any, depth int) []any {
	var out []any
	for _, e := range elems {
		if sub, ok := e.(*Array); ok && depth > 0 {
			out = append(out, flatten(sub.Elems, depth-1)...)
			continue
		}
		out = append(out, e)
	}
	return out
}

func sliceBounds(n int, args []any) (int, int) {
	start, end := 0, n
	if len(args) > 0 {
		start = normIndex(int(ToNumber(args[0])), n)
	}
	if len(args) > 1 {
		end = normIndex(int(ToNumber(args[1])), n)
	}
	if end < start {
		end = start
	}
	return start, end
}

func normIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func clampIndex(i, n int) int { return normIndex(i, n) }

func stringMethod(s, name string, args []any, at Pos) (any, bool, error) {
	argS := func(i int) string {
		if i < len(args) {
			return ToString(args[i])
		}
		return ""
	}
	switch name {
	case "toUpperCase":
		return strings.ToUpper(s), true, nil
	case "toLowerCase":
		return strings.ToLower(s), true, nil
	case "trim":
		return strings.TrimSpace(s), true, nil
	case "trimStart":
		return strings.TrimLeft(s, " \t\n\r"), true, nil
	case "trimEnd":
		return strings.TrimRight(s, " \t\n\r"), true, nil
	case "split":
		if len(args) == 0 {
			return &Array{Elems: []any{s}}, true, nil
		}
		sep := argS(0)
		var parts []string
		if sep == "" {
			for _, r := range s {
				parts = append(parts, string(r))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		out := make([]any, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return &Array{Elems: out}, true, nil
	case "slice":
		runes := []rune(s)
		start, end := sliceBounds(len(runes), args)
		return string(runes[start:end]), true, nil
	case "substring":
		runes := []rune(s)
		start, end := 0, len(runes)
		if len(args) > 0 {
			start = normIndex(int(ToNumber(args[0])), len(runes))
		}
		if len(args) > 1 {
			end = normIndex(int(ToNumber(args[1])), len(runes))
		}
		if start > end {
			start, end = end, start
		}
		return string(runes[start:end]), true, nil
	case "charAt":
		runes := []rune(s)
		i := 0
		if len(args) > 0 {
			i = int(ToNumber(args[0]))
		}
		if i < 0 || i >= len(runes) {
			return "", true, nil
		}
		return string(runes[i]), true, nil
	case "charCodeAt", "codePointAt":
		runes := []rune(s)
		i := 0
		if len(args) > 0 {
			i = int(ToNumber(args[0]))
		}
		if i < 0 || i >= len(runes) {
			return math.NaN(), true, nil
		}
		return float64(runes[i]), true, nil
	case "indexOf":
		return float64(strings.Index(s, argS(0))), true, nil
	case "lastIndexOf":
		return float64(strings.LastIndex(s, argS(0))), true, nil
	case "includes":
		return strings.Contains(s, argS(0)), true, nil
	case "startsWith":
		return strings.HasPrefix(s, argS(0)), true, nil
	case "endsWith":
		return strings.HasSuffix(s, argS(0)), true, nil
	case "replace":
		return strings.Replace(s, argS(0), argS(1), 1), true, nil
	case "replaceAll":
		return strings.ReplaceAll(s, argS(0), argS(1)), true, nil
	case "repeat":
		n := 0
		if len(args) > 0 {
			n = int(ToNumber(args[0]))
		}
		if n < 0 {
			return nil, true, &RuntimeError{Pos: at, Msg: "repeat count must be non-negative"}
		}
		return strings.Repeat(s, n), true, nil
	case "padStart", "padEnd":
		width := 0
		if len(args) > 0 {
			width = int(ToNumber(args[0]))
		}
		pad := " "
		if len(args) > 1 {
			pad = argS(1)
		}
		if pad == "" || len([]rune(s)) >= width {
			return s, true, nil
		}
		need := width - len([]rune(s))
		filler := strings.Repeat(pad, need/len([]rune(pad))+1)
		filler = string([]rune(filler)[:need])
		if name == "padStart" {
			return filler + s, true, nil
		}
		return s + filler, true, nil
	case "concat":
		var b strings.Builder
		b.WriteString(s)
		for _, a := range args {
			b.WriteString(ToString(a))
		}
		return b.String(), true, nil
	case "at":
		runes := []rune(s)
		i := 0
		if len(args) > 0 {
			i = int(ToNumber(args[0]))
		}
		if i < 0 {
			i += len(runes)
		}
		if i < 0 || i >= len(runes) {
			return nil, true, nil
		}
		return string(runes[i]), true, nil
	case "localeCompare":
		o := argS(0)
		switch {
		case s < o:
			return -1.0, true, nil
		case s > o:
			return 1.0, true, nil
		default:
			return 0.0, true, nil
		}
	case "toString":
		return s, true, nil
	}
	return nil, false, nil
}

func setMethod(s *SetVal, name string, args []any) (any, bool, error) {
	switch name {
	case "add":
		if len(args) > 0 {
			s.Add(args[0])
		}
		return s, true, nil
	case "has":
		return len(args) > 0 && s.Has(args[0]), true, nil
	case "delete":
		return len(args) > 0 && s.Delete(args[0]), true, nil
	case "clear":
		*s = *NewSet()
		return nil, true, nil
	case "values", "keys":
		return &Array{Elems: s.Values()}, true, nil
	}
	return nil, false, nil
}

func mapMethod(m *MapVal, name string, args []any) (any, bool, error) {
	switch name {
	case "set":
		if len(args) >= 2 {
			m.Set(args[0], args[1])
		}
		return m, true, nil
	case "get":
		if len(args) > 0 {
			return m.Get(args[0]), true, nil
		}
		return nil, true, nil
	case "has":
		return len(args) > 0 && m.Has(args[0]), true, nil
	case "delete":
		return len(args) > 0 && m.Delete(args[0]), true, nil
	case "keys":
		return &Array{Elems: m.Keys()}, true, nil
	case "values":
		keys := m.Keys()
		out := make([]any, len(keys))
		for i, k := range keys {
			out[i] = m.Get(k)
		}
		return &Array{Elems: out}, true, nil
	case "entries":
		keys := m.Keys()
		out := make([]any, len(keys))
		for i, k := range keys {
			out[i] = NewArray(k, m.Get(k))
		}
		return &Array{Elems: out}, true, nil
	}
	return nil, false, nil
}

// ---------------------------------------------------------------------------
// Globals

func bi(name string, fn func(in *Interp, args []any) (any, error)) *Builtin {
	return &Builtin{Name: name, Fn: fn}
}

func num1(name string, f func(float64) float64) *Builtin {
	return bi(name, func(_ *Interp, args []any) (any, error) {
		if len(args) < 1 {
			return math.NaN(), nil
		}
		return f(ToNumber(args[0])), nil
	})
}

func installGlobals(env *Env) {
	mathObj := map[string]any{
		"floor": num1("floor", math.Floor),
		"ceil":  num1("ceil", math.Ceil),
		"round": num1("round", func(f float64) float64 { return math.Floor(f + 0.5) }),
		"trunc": num1("trunc", math.Trunc),
		"abs":   num1("abs", math.Abs),
		"sqrt":  num1("sqrt", math.Sqrt),
		"cbrt":  num1("cbrt", math.Cbrt),
		"log":   num1("log", math.Log),
		"log2":  num1("log2", math.Log2),
		"log10": num1("log10", math.Log10),
		"exp":   num1("exp", math.Exp),
		"sign": num1("sign", func(f float64) float64 {
			switch {
			case f > 0:
				return 1
			case f < 0:
				return -1
			}
			return 0
		}),
		"pow": bi("pow", func(_ *Interp, args []any) (any, error) {
			if len(args) < 2 {
				return math.NaN(), nil
			}
			return math.Pow(ToNumber(args[0]), ToNumber(args[1])), nil
		}),
		"max": bi("max", func(_ *Interp, args []any) (any, error) {
			out := math.Inf(-1)
			for _, a := range args {
				out = math.Max(out, ToNumber(a))
			}
			return out, nil
		}),
		"min": bi("min", func(_ *Interp, args []any) (any, error) {
			out := math.Inf(1)
			for _, a := range args {
				out = math.Min(out, ToNumber(a))
			}
			return out, nil
		}),
		"hypot": bi("hypot", func(_ *Interp, args []any) (any, error) {
			sum := 0.0
			for _, a := range args {
				f := ToNumber(a)
				sum += f * f
			}
			return math.Sqrt(sum), nil
		}),
		"PI": math.Pi,
		"E":  math.E,
	}
	jsonObj := map[string]any{
		"stringify": bi("JSON.stringify", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return "undefined", nil
			}
			if len(args) >= 3 {
				return jsonx.EncodeIndent(ToJSON(args[0]), indentUnit(args[2])), nil
			}
			return jsonx.Encode(ToJSON(args[0])), nil
		}),
		"parse": bi("JSON.parse", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return nil, &RuntimeError{Msg: "JSON.parse needs an argument"}
			}
			v, err := jsonx.Parse(ToString(args[0]), jsonx.Strict)
			if err != nil {
				return nil, &RuntimeError{Msg: "JSON.parse: " + err.Error()}
			}
			return FromJSON(v), nil
		}),
	}
	objectObj := map[string]any{
		"keys": bi("Object.keys", func(_ *Interp, args []any) (any, error) {
			m, ok := arg0Map(args)
			if !ok {
				return &Array{}, nil
			}
			keys := sortedKeys(m)
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i] = k
			}
			return &Array{Elems: out}, nil
		}),
		"values": bi("Object.values", func(_ *Interp, args []any) (any, error) {
			m, ok := arg0Map(args)
			if !ok {
				return &Array{}, nil
			}
			keys := sortedKeys(m)
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i] = m[k]
			}
			return &Array{Elems: out}, nil
		}),
		"entries": bi("Object.entries", func(_ *Interp, args []any) (any, error) {
			m, ok := arg0Map(args)
			if !ok {
				return &Array{}, nil
			}
			keys := sortedKeys(m)
			out := make([]any, len(keys))
			for i, k := range keys {
				out[i] = NewArray(k, m[k])
			}
			return &Array{Elems: out}, nil
		}),
		"assign": bi("Object.assign", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return map[string]any{}, nil
			}
			dst, ok := args[0].(map[string]any)
			if !ok {
				return nil, &RuntimeError{Msg: "Object.assign target must be an object"}
			}
			for _, src := range args[1:] {
				if m, ok := src.(map[string]any); ok {
					for k, v := range m {
						dst[k] = v
					}
				}
			}
			return dst, nil
		}),
	}
	arrayObj := map[string]any{
		"isArray": bi("Array.isArray", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return false, nil
			}
			_, ok := args[0].(*Array)
			return ok, nil
		}),
		"from": bi("Array.from", func(in *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return &Array{}, nil
			}
			var items []any
			// Array.from({length: n}, fn) array-like style first.
			if m, ok := args[0].(map[string]any); ok {
				if lv, has := m["length"]; has {
					items = make([]any, int(ToNumber(lv)))
				}
			}
			if items == nil {
				var err error
				items, err = iterate(args[0], false, Pos{})
				if err != nil {
					return nil, err
				}
			}
			if len(args) > 1 {
				out := make([]any, len(items))
				for i, it := range items {
					v, err := in.Call(args[1], []any{it, float64(i)}, Pos{})
					if err != nil {
						return nil, err
					}
					out[i] = v
				}
				return &Array{Elems: out}, nil
			}
			return &Array{Elems: items}, nil
		}),
	}
	numberObj := map[string]any{
		"isInteger": bi("Number.isInteger", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return false, nil
			}
			f, ok := args[0].(float64)
			return ok && f == math.Trunc(f), nil
		}),
		"isFinite": bi("Number.isFinite", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return false, nil
			}
			f, ok := args[0].(float64)
			return ok && !math.IsInf(f, 0) && !math.IsNaN(f), nil
		}),
		"isNaN": bi("Number.isNaN", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return false, nil
			}
			f, ok := args[0].(float64)
			return ok && math.IsNaN(f), nil
		}),
		"parseFloat":        bi("Number.parseFloat", parseFloatFn),
		"parseInt":          bi("Number.parseInt", parseIntFn),
		"MAX_SAFE_INTEGER":  float64(1<<53 - 1),
		"MIN_SAFE_INTEGER":  -float64(1<<53 - 1),
		"POSITIVE_INFINITY": math.Inf(1),
		"NEGATIVE_INFINITY": math.Inf(-1),
		"EPSILON":           2.220446049250313e-16,
	}
	consoleObj := map[string]any{
		"log":   bi("console.log", consoleLog),
		"error": bi("console.error", consoleLog),
		"warn":  bi("console.warn", consoleLog),
	}
	stringObj := map[string]any{
		"fromCharCode": bi("String.fromCharCode", func(_ *Interp, args []any) (any, error) {
			var b strings.Builder
			for _, a := range args {
				b.WriteRune(rune(int(ToNumber(a))))
			}
			return b.String(), nil
		}),
	}

	stringCallable := &CallableObj{
		Builtin: bi("String", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return "", nil
			}
			return ToString(args[0]), nil
		}),
		Props: stringObj,
	}
	numberCallable := &CallableObj{
		Builtin: bi("Number", func(_ *Interp, args []any) (any, error) {
			if len(args) == 0 {
				return 0.0, nil
			}
			return ToNumber(args[0]), nil
		}),
		Props: numberObj,
	}
	defs := map[string]any{
		"Math":     mathObj,
		"JSON":     jsonObj,
		"Object":   objectObj,
		"Array":    arrayObj,
		"Number":   numberCallable,
		"console":  consoleObj,
		"String":   stringCallable,
		"Infinity": math.Inf(1),
		"NaN":      math.NaN(),
	}
	for k, v := range defs {
		_ = env.Define(k, v, true)
	}
	// Callable globals. String/Number/Boolean conversion functions shadow
	// the property objects when called; the interpreter checks callability
	// on the value, so install them as builtins under distinct handling:
	// String(x) is resolved through stringCallable below.
	_ = env.Define("parseInt", bi("parseInt", parseIntFn), true)
	_ = env.Define("parseFloat", bi("parseFloat", parseFloatFn), true)
	_ = env.Define("isNaN", bi("isNaN", func(_ *Interp, args []any) (any, error) {
		if len(args) == 0 {
			return true, nil
		}
		return math.IsNaN(ToNumber(args[0])), nil
	}), true)
	_ = env.Define("isFinite", bi("isFinite", func(_ *Interp, args []any) (any, error) {
		if len(args) == 0 {
			return false, nil
		}
		f := ToNumber(args[0])
		return !math.IsNaN(f) && !math.IsInf(f, 0), nil
	}), true)
	_ = env.Define("Boolean", bi("Boolean", func(_ *Interp, args []any) (any, error) {
		return len(args) > 0 && Truthy(args[0]), nil
	}), true)
}

func indentUnit(v any) string {
	if f, ok := v.(float64); ok {
		return strings.Repeat(" ", int(f))
	}
	return ToString(v)
}

func arg0Map(args []any) (map[string]any, bool) {
	if len(args) == 0 {
		return nil, false
	}
	m, ok := args[0].(map[string]any)
	return m, ok
}

func parseIntFn(_ *Interp, args []any) (any, error) {
	if len(args) == 0 {
		return math.NaN(), nil
	}
	s := strings.TrimSpace(ToString(args[0]))
	radix := 10
	if len(args) > 1 {
		if r := int(ToNumber(args[1])); r >= 2 && r <= 36 {
			radix = r
		}
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else {
		s = strings.TrimPrefix(s, "+")
	}
	// Consume the longest valid prefix, as JS does.
	end := 0
	for end < len(s) {
		c := s[end]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'z':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'Z':
			d = int(c-'A') + 10
		default:
			d = 99
		}
		if d >= radix {
			break
		}
		end++
	}
	if end == 0 {
		return math.NaN(), nil
	}
	n, err := strconv.ParseInt(s[:end], radix, 64)
	if err != nil {
		return math.NaN(), nil
	}
	if neg {
		n = -n
	}
	return float64(n), nil
}

func parseFloatFn(_ *Interp, args []any) (any, error) {
	if len(args) == 0 {
		return math.NaN(), nil
	}
	s := strings.TrimSpace(ToString(args[0]))
	end := 0
	seenDot, seenExp, seenDigit := false, false, false
	for end < len(s) {
		c := s[end]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && seenDigit && !seenExp:
			seenExp = true
		case (c == '+' || c == '-') && (end == 0 || s[end-1] == 'e' || s[end-1] == 'E'):
			// sign ok
		default:
			goto done
		}
		end++
	}
done:
	if end == 0 {
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return math.NaN(), nil
	}
	return f, nil
}

func consoleLog(in *Interp, args []any) (any, error) {
	if in.Stdout == nil {
		return nil, nil
	}
	parts := make([]string, len(args))
	for i, a := range args {
		if s, ok := a.(string); ok {
			parts[i] = s
		} else if _, isObj := a.(map[string]any); isObj {
			parts[i] = jsonx.Encode(ToJSON(a))
		} else if _, isArr := a.(*Array); isArr {
			parts[i] = jsonx.Encode(ToJSON(a))
		} else {
			parts[i] = ToString(a)
		}
	}
	fmt.Fprintln(in.Stdout, strings.Join(parts, " "))
	return nil, nil
}
