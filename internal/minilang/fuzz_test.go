package minilang_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/minilang"
)

// FuzzEngineDiff is the native-fuzzing form of the engine-parity gate:
// the fuzzer's bytes drive a structured program generator (so every
// input is a valid program by construction — coverage goes into the
// two engines, not the parser's error paths), and the compiled closure
// engine must agree with the reference tree-walker on result, error
// presence, and stdout — and the static analyzer must report zero
// errors for any program both engines execute successfully. Run continuously with:
//
//	go test -fuzz=FuzzEngineDiff -fuzztime=30s ./internal/minilang
//
// The generator leans on the constructs the LLM synthesizer emits
// (locals, loops, conditionals, closures, array building and folding)
// plus the shadowing and capture shapes that historically diverge
// between environment- and slot-based scoping.
func FuzzEngineDiff(f *testing.F) {
	f.Add([]byte{0}, int64(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(7))
	f.Add([]byte{0xff, 0x80, 0x41, 0x13, 0x9c, 0x22}, int64(40))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, int64(13))
	f.Fuzz(func(t *testing.T, program []byte, n int64) {
		src := genProgram(program)
		args := map[string]any{"n": float64(n % 50)}
		vC, vT, errC, errT, outC, outT := fuzzRunBoth(t, src, args)
		if (errC == nil) != (errT == nil) {
			t.Fatalf("engine disagreement\nprogram:\n%s\ncompiled err=%v, tree err=%v", src, errC, errT)
		}
		if errC != nil {
			// Fuel errors report the node under evaluation when the
			// budget died; the engines spend a constant few steps
			// differently, so only the kind is compared (as in the
			// differential corpus test).
			if strings.Contains(errC.Error(), minilang.ErrFuel) && strings.Contains(errT.Error(), minilang.ErrFuel) {
				return
			}
			if errC.Error() != errT.Error() {
				t.Fatalf("error text diverges\nprogram:\n%s\ncompiled:    %v\ntree-walker: %v", src, errC, errT)
			}
			return
		}
		if !reflect.DeepEqual(vC, vT) {
			t.Fatalf("result diverges\nprogram:\n%s\ncompiled=%#v\ntree=%#v", src, vC, vT)
		}
		if outC != outT {
			t.Fatalf("stdout diverges\nprogram:\n%s\ncompiled=%q\ntree=%q", src, outC, outT)
		}
	})
}

// fuzzRunBoth mirrors engine_diff_test.go's runBoth but never calls
// t.Fatal on compile errors: genProgram emits valid programs by
// construction, so a compile failure is itself a bug worth reporting
// with the program attached.
func fuzzRunBoth(t *testing.T, src string, args map[string]any) (anyC, anyT any, errC, errT error, outC, outT string) {
	t.Helper()
	cfC, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatalf("generated program does not compile: %v\nprogram:\n%s", err, src)
	}
	cfT, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatalf("generated program does not compile: %v\nprogram:\n%s", err, src)
	}
	cfT.TreeWalker = true
	var bufC, bufT bytes.Buffer
	cfC.Stdout, cfT.Stdout = &bufC, &bufT
	cfC.MaxSteps, cfT.MaxSteps = 300_000, 300_000
	anyC, errC = cfC.Call(context.Background(), args)
	anyT, errT = cfT.Call(context.Background(), args)
	if errC == nil && errT == nil {
		// No-false-positive oracle: a program both engines execute
		// successfully must carry zero analyzer errors.
		assertAnalyzerClean(t, src, cfC.Prog)
	}
	return anyC, anyT, errC, errT, bufC.String(), bufT.String()
}

// byteStream hands out generator decisions from the fuzz input,
// cycling when the input is short so every byte slice yields a
// terminating program.
type byteStream struct {
	data []byte
	pos  int
}

func (s *byteStream) next() byte {
	if len(s.data) == 0 {
		return 0
	}
	b := s.data[s.pos%len(s.data)]
	s.pos++
	return b
}

func (s *byteStream) intn(n int) int { return int(s.next()) % n }

// genProgram lowers fuzz bytes into one exported minilang function.
// Statement count and every statement's shape come from the stream, so
// the fuzzer's mutations explore program space rather than byte soup.
func genProgram(data []byte) string {
	s := &byteStream{data: data}
	var b strings.Builder
	b.WriteString("export function f({n}: {n: number}): any {\n")
	b.WriteString("  let acc = n;\n  const out = [];\n")
	ops := []string{"+", "-", "*", "%"}
	count := 1 + s.intn(8)
	for i := 0; i < count; i++ {
		switch s.intn(10) {
		case 0:
			fmt.Fprintf(&b, "  acc = acc %s %d;\n", ops[s.intn(len(ops))], 1+s.intn(9))
		case 1:
			fmt.Fprintf(&b, "  for (let i = 0; i < %d; i++) { acc = acc + i %s %d; }\n",
				1+s.intn(6), ops[s.intn(len(ops))], 1+s.intn(5))
		case 2:
			fmt.Fprintf(&b, "  if (acc %% 2 === 0) { acc = acc + %d; } else { acc = acc - %d; }\n",
				s.intn(10), s.intn(10))
		case 3:
			fmt.Fprintf(&b, "  out.push(acc %s %d);\n", ops[s.intn(len(ops))], 1+s.intn(9))
		case 4:
			fmt.Fprintf(&b, "  { let acc = %d; out.push(acc); }\n", s.intn(100))
		case 5:
			// Closure capture of a loop variable: the shape that tells
			// per-iteration bindings apart from a shared slot.
			fmt.Fprintf(&b, "  { const fns = []; for (let i = 0; i < %d; i++) { fns.push(() => i + acc); } "+
				"out.push(fns.map((g) => g()).reduce((a, x) => a + x, 0)); }\n", 1+s.intn(4))
		case 6:
			fmt.Fprintf(&b, "  acc = ((x) => x %s %d)(acc);\n", ops[s.intn(len(ops))], 1+s.intn(9))
		case 7:
			fmt.Fprintf(&b, "  while (acc > %d) { acc = acc - %d; }\n", 50+s.intn(50), 1+s.intn(9))
		case 8:
			fmt.Fprintf(&b, "  out.push([%d, %d].filter((x) => x %% 2 === %d).length);\n",
				s.intn(20), s.intn(20), s.intn(2))
		case 9:
			fmt.Fprintf(&b, "  console.log(\"s%d\", acc);\n", i)
		}
	}
	b.WriteString("  return {acc, out, sum: out.reduce((a, x) => a + x, 0)};\n}\n")
	return b.String()
}
