package minilang

import (
	"fmt"
	"strings"
)

// CheckErrors aggregates the static errors found in a program.
type CheckErrors []*CompileError

func (ce CheckErrors) Error() string {
	msgs := make([]string, len(ce))
	for i, e := range ce {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "; ")
}

// Check performs the static validation the AskIt compiler applies to
// generated code before running example tests (paper §III-D Step 3,
// "syntactic check"): every referenced identifier must be declared (or a
// known global), declarations must not collide within a scope, const
// variables must not be reassigned, and break/continue must appear inside
// loops. It returns nil when the program is well formed.
func Check(prog *Program) error {
	c := &checker{}
	global := newScope(nil)
	for name := range builtinGlobals {
		global.declare(name, true)
	}
	// Hoist top-level functions, as JS does.
	for _, s := range prog.Stmts {
		if fd, ok := s.(*FuncDecl); ok {
			global.declare(fd.Name, false)
		}
	}
	for _, s := range prog.Stmts {
		c.stmt(global, s, false)
	}
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs
}

// builtinGlobals is the ambient global set every program is checked
// against. It is shared and must never be mutated; callers that need a
// superset (e.g. host bindings) build their own merged copy.
var builtinGlobals = map[string]bool{
	"Math": true, "JSON": true, "Object": true, "Array": true,
	"Number": true, "String": true, "Boolean": true, "console": true,
	"parseInt": true, "parseFloat": true, "isNaN": true,
	"isFinite": true, "Infinity": true, "NaN": true,
	"Set": true, "Map": true, "Error": true,
	// Host bindings the AskIt engine provides for file-access tasks
	// (the paper's §II-A2 CSV example); see core.Options.FS.
	"appendFile": true, "readFile": true, "writeFile": true,
}

type scope struct {
	parent *scope
	names  map[string]bool // name -> const
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]bool{}}
}

func (s *scope) declare(name string, con bool) bool {
	if _, dup := s.names[name]; dup {
		return false
	}
	s.names[name] = con
	return true
}

func (s *scope) lookup(name string) (con, ok bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if c, present := sc.names[name]; present {
			return c, true
		}
	}
	return false, false
}

type checker struct {
	errs CheckErrors
}

func (c *checker) errf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) stmt(sc *scope, s Stmt, inLoop bool) {
	switch st := s.(type) {
	case *BlockStmt:
		inner := newScope(sc)
		for _, sub := range st.Stmts {
			if fd, ok := sub.(*FuncDecl); ok {
				inner.declare(fd.Name, false)
			}
		}
		for _, sub := range st.Stmts {
			c.stmt(inner, sub, inLoop)
		}
	case *VarDecl:
		if st.Init != nil {
			c.expr(sc, st.Init)
		}
		if !sc.declare(st.Name, st.Keyword == "const") {
			c.errf(st.P, "duplicate declaration of %q", st.Name)
		}
	case *AssignStmt:
		c.assignTarget(sc, st.Target)
		c.expr(sc, st.Value)
	case *IncDecStmt:
		c.assignTarget(sc, st.Target)
	case *ExprStmt:
		c.expr(sc, st.X)
	case *IfStmt:
		c.expr(sc, st.Cond)
		c.stmt(sc, st.Then, inLoop)
		if st.Else != nil {
			c.stmt(sc, st.Else, inLoop)
		}
	case *WhileStmt:
		c.expr(sc, st.Cond)
		c.stmt(sc, st.Body, true)
	case *ForStmt:
		inner := newScope(sc)
		if st.Init != nil {
			c.stmt(inner, st.Init, false)
		}
		if st.Cond != nil {
			c.expr(inner, st.Cond)
		}
		if st.Post != nil {
			// Post runs inside the loop; ++/-- on the induction variable
			// is an assignment, permitted even for let.
			c.stmt(inner, st.Post, true)
		}
		c.stmt(inner, st.Body, true)
	case *ForOfStmt:
		c.expr(sc, st.Seq)
		inner := newScope(sc)
		inner.declare(st.Name, st.Keyword == "const")
		c.stmt(inner, st.Body, true)
	case *ReturnStmt:
		if st.Value != nil {
			c.expr(sc, st.Value)
		}
	case *BreakStmt:
		if !inLoop {
			c.errf(st.P, "break outside loop")
		}
	case *ContinueStmt:
		if !inLoop {
			c.errf(st.P, "continue outside loop")
		}
	case *ThrowStmt:
		c.expr(sc, st.Value)
	case *FuncDecl:
		// Name already hoisted by the enclosing block.
		inner := newScope(sc)
		for _, p := range st.Params {
			if !inner.declare(p.Name, false) {
				c.errf(p.Pos, "duplicate parameter %q", p.Name)
			}
		}
		c.stmt(inner, st.Body, false)
	}
}

func (c *checker) assignTarget(sc *scope, e Expr) {
	switch t := e.(type) {
	case *Ident:
		con, ok := sc.lookup(t.Name)
		if !ok {
			c.errf(t.P, "assignment to undeclared variable %q", t.Name)
			return
		}
		if con {
			c.errf(t.P, "assignment to constant %q", t.Name)
		}
	case *MemberExpr:
		c.expr(sc, t.X)
	case *IndexExpr:
		c.expr(sc, t.X)
		c.expr(sc, t.Index)
	default:
		c.errf(e.NodePos(), "invalid assignment target")
	}
}

func (c *checker) expr(sc *scope, e Expr) {
	switch x := e.(type) {
	case *Ident:
		if _, ok := sc.lookup(x.Name); !ok {
			c.errf(x.P, "undefined variable %q", x.Name)
		}
	case *ArrayLit:
		for _, el := range x.Elems {
			c.expr(sc, el)
		}
	case *ObjectLit:
		for _, f := range x.Fields {
			if f.Value == nil {
				if _, ok := sc.lookup(f.Key); !ok {
					c.errf(x.P, "undefined variable %q in shorthand property", f.Key)
				}
				continue
			}
			c.expr(sc, f.Value)
		}
	case *TemplateLit:
		for _, sub := range x.Exprs {
			c.expr(sc, sub)
		}
	case *UnaryExpr:
		c.expr(sc, x.X)
	case *BinaryExpr:
		c.expr(sc, x.L)
		c.expr(sc, x.R)
	case *CondExpr:
		c.expr(sc, x.Cond)
		c.expr(sc, x.Then)
		c.expr(sc, x.Else)
	case *MemberExpr:
		c.expr(sc, x.X)
	case *IndexExpr:
		c.expr(sc, x.X)
		c.expr(sc, x.Index)
	case *CallExpr:
		c.expr(sc, x.Fn)
		for _, a := range x.Args {
			c.expr(sc, a)
		}
	case *NewExpr:
		switch x.Ctor {
		case "Set", "Map", "Array", "Error", "TypeError", "RangeError":
		default:
			c.errf(x.P, "unsupported constructor %q", x.Ctor)
		}
		for _, a := range x.Args {
			c.expr(sc, a)
		}
	case *ArrowFunc:
		inner := newScope(sc)
		for _, p := range x.Params {
			if !inner.declare(p.Name, false) {
				c.errf(p.Pos, "duplicate parameter %q", p.Name)
			}
		}
		if x.Expr != nil {
			c.expr(inner, x.Expr)
		}
		if x.Body != nil {
			c.stmt(inner, x.Body, false)
		}
	case *FuncLit:
		inner := newScope(sc)
		for _, p := range x.Params {
			if !inner.declare(p.Name, false) {
				c.errf(p.Pos, "duplicate parameter %q", p.Name)
			}
		}
		c.stmt(inner, x.Body, false)
	}
}
