package minilang_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/minilang"
	"repro/internal/minilang/analysis"
)

// The differential corpus: every program is executed by both engines —
// the compiled closure IR and the reference tree-walker — and must
// produce identical JSON results (or both fail). This is the acceptance
// gate for the compiled engine.

type diffCase struct {
	name string
	src  string // full program; entry function is always "f"
	args map[string]any
}

var diffCorpus = []diffCase{
	{"arith", `export function f({a, b}: {a: number, b: number}): number {
  return (a + b) * (a - b) / 2 + a % b + a ** 2;
}`, map[string]any{"a": 9.0, "b": 4.0}},

	{"string-ops", `export function f({s}: {s: string}): string {
  return s.toUpperCase() + "|" + s.split("").reverse().join("") + "|" + s.slice(1, 3) + s.padStart(8, "*");
}`, map[string]any{"s": "hello"}},

	{"factorial-loop", `export function f({n}: {n: number}): number {
  if (n <= 1) { return 1; }
  let result = 1;
  for (let i = 2; i <= n; i++) { result *= i; }
  return result;
}`, map[string]any{"n": 10}},

	{"factorial-recursive", `export function f({n}: {n: number}): number {
  return n <= 1 ? 1 : n * f({n: n - 1});
}`, map[string]any{"n": 8}},

	{"mutual-recursion", `function isEven(n) { return n === 0 ? true : isOdd(n - 1); }
function isOdd(n) { return n === 0 ? false : isEven(n - 1); }
export function f({n}: {n: number}): boolean { return isEven(n); }`,
		map[string]any{"n": 17}},

	{"shadowing", `export function f({x}: {x: number}): number {
  let y = x;
  {
    let y = x * 10;
    {
      let y = x * 100;
      x = y + 1;
    }
    y = y + 2;
    x = x + y;
  }
  return x + y;
}`, map[string]any{"x": 3}},

	{"closure-counter", `export function f({n}: {n: number}): number {
  let count = 0;
  const bump = () => { count = count + 1; return count; };
  for (let i = 0; i < n; i++) { bump(); }
  return count;
}`, map[string]any{"n": 7}},

	{"closure-capture-forof", `export function f({xs}: {xs: number[]}): number[] {
  const fns = [];
  for (const x of xs) {
    fns.push(() => x * 2);
  }
  return fns.map((g) => g());
}`, map[string]any{"xs": []any{1.0, 2.0, 3.0}}},

	{"closure-capture-for-let", `export function f({n}: {n: number}): number[] {
  const fns = [];
  for (let i = 0; i < n; i++) {
    fns.push(() => i);
  }
  return fns.map((g) => g());
}`, map[string]any{"n": 3}},

	{"spread-array", `export function f({xs, ys}: {xs: number[], ys: number[]}): number[] {
  const all = [...xs, 99, ...ys];
  return [...all];
}`, map[string]any{"xs": []any{1.0, 2.0}, "ys": []any{3.0, 4.0}}},

	{"spread-call", `function sum3(a, b, c) { return a + b + c; }
export function f({xs}: {xs: number[]}): number { return sum3(...xs); }`,
		map[string]any{"xs": []any{1.0, 2.0, 3.0}}},

	{"object-shorthand", `export function f({a}: {a: number}): any {
  const b = a * 2;
  return {a, b, c: a + b};
}`, map[string]any{"a": 5}},

	{"template-literal", `export function f({name, n}: {name: string, n: number}): string {
  return ` + "`hello ${name}, you have ${n * 2} points`" + `;
}`, map[string]any{"name": "ada", "n": 21}},

	{"array-methods", `export function f({xs}: {xs: number[]}): any {
  const evens = xs.filter((x) => x % 2 === 0);
  const doubled = xs.map((x) => x * 2);
  const total = xs.reduce((a, x) => a + x, 0);
  const sorted = [...xs].sort((a, b) => b - a);
  return {evens, doubled, total, sorted, has: xs.includes(3), idx: xs.indexOf(4)};
}`, map[string]any{"xs": []any{5.0, 3.0, 8.0, 1.0, 4.0}}},

	{"object-iteration", `export function f({o}: {o: any}): any {
  const keys = [];
  for (const k in o) { keys.push(k); }
  const vals = Object.values(o);
  const entries = Object.entries(o).map((e) => e[0] + "=" + e[1]);
  return {keys, vals, entries};
}`, map[string]any{"o": map[string]any{"b": 2.0, "a": 1.0, "c": 3.0}}},

	{"set-map", `export function f({xs}: {xs: number[]}): any {
  const s = new Set(xs);
  s.add(100);
  const m = new Map();
  for (const x of xs) { m.set(x, x * x); }
  m.delete(xs[0]);
  return {size: s.size, has: s.has(100), squares: m.values(), keys: m.keys()};
}`, map[string]any{"xs": []any{1.0, 2.0, 2.0, 3.0}}},

	{"while-break-continue", `export function f({n}: {n: number}): number {
  let i = 0;
  let sum = 0;
  while (true) {
    i++;
    if (i > n) { break; }
    if (i % 2 === 0) { continue; }
    sum += i;
  }
  return sum;
}`, map[string]any{"n": 10}},

	{"nested-loops-labelless", `export function f({n}: {n: number}): number {
  let hits = 0;
  for (let i = 0; i < n; i++) {
    for (let j = 0; j < n; j++) {
      if (j > i) { break; }
      hits++;
    }
  }
  return hits;
}`, map[string]any{"n": 5}},

	{"throw", `export function f({x}: {x: number}): number {
  if (x < 0) { throw new Error("negative input"); }
  return Math.sqrt(x);
}`, map[string]any{"x": -4}},

	{"throw-string", `export function f({x}: {x: number}): number {
  if (x < 0) { throw "bad"; }
  return x;
}`, map[string]any{"x": -1}},

	{"optional-chaining", `export function f({o}: {o: any}): any {
  return [o?.a, o?.missing, o.a?.b];
}`, map[string]any{"o": map[string]any{"a": map[string]any{"b": 7.0}}}},

	{"typeof-coercion", `export function f({}: {}): any {
  return [typeof 1, typeof "s", typeof true, typeof null, typeof [], typeof {},
          "5" * 2, "3" + 4, +"7", -"2", !0, !!"x", 1 < "2", "10" > 9];
}`, map[string]any{}},

	{"math-json", `export function f({x}: {x: number}): any {
  const o = {a: Math.floor(x), b: Math.max(1, x, 3), c: Math.abs(-x)};
  return JSON.parse(JSON.stringify(o));
}`, map[string]any{"x": 6.7}},

	{"string-number-callables", `export function f({x}: {x: number}): any {
  return [String(x), Number("42"), Boolean(x), String.fromCharCode(72, 105),
          parseInt("3fx", 16), parseFloat("2.5e1z"), isNaN("abc"), isFinite("12")];
}`, map[string]any{"x": 9}},

	{"index-assign-grow", `export function f({n}: {n: number}): any {
  const a = [];
  a[n] = "end";
  a[0] = "start";
  const o = {};
  o["k" + n] = n;
  o.direct = true;
  return {a, o, len: a.length};
}`, map[string]any{"n": 4}},

	{"compound-assign", `export function f({x}: {x: number}): any {
  let a = x;
  a += 3; a -= 1; a *= 4; a /= 2; a %= 7;
  const arr = [1, 2, 3];
  arr[1] += 10;
  const o = {v: 5};
  o.v *= 3;
  return [a, arr, o.v];
}`, map[string]any{"x": 5}},

	{"incdec-targets", `export function f({}: {}): any {
  let i = 0;
  i++; i++; i--;
  const a = [5];
  a[0]++;
  const o = {n: 1};
  o.n--;
  return [i, a[0], o.n];
}`, map[string]any{}},

	{"func-expr-named-params", `export function f({x}: {x: number}): number {
  const g = function(a, b) { return a * b; };
  return g(x, x + 1);
}`, map[string]any{"x": 6}},

	{"arrow-block-body", `export function f({xs}: {xs: number[]}): number {
  const pick = (arr) => {
    let best = arr[0];
    for (const v of arr) { if (v > best) { best = v; } }
    return best;
  };
  return pick(xs);
}`, map[string]any{"xs": []any{3.0, 9.0, 4.0}}},

	{"higher-order-return", `export function f({n}: {n: number}): number {
  const adder = (k) => (x) => x + k;
  const add5 = adder(5);
  return add5(n) + adder(1)(n);
}`, map[string]any{"n": 10}},

	{"toplevel-const", `const BASE = 10;
let calls = 0;
function helper(x) { calls = calls + 1; return x * BASE; }
export function f({n}: {n: number}): number {
  return helper(n) + calls;
}`, map[string]any{"n": 3}},

	{"helper-funcs", `function square(x) { return x * x; }
function cube(x) { return x * square(x); }
export function f({n}: {n: number}): number { return square(n) + cube(n); }`,
		map[string]any{"n": 4}},

	{"forin-array", `export function f({xs}: {xs: string[]}): any {
  const out = [];
  for (const i in xs) { out.push(i + ":" + xs[i]); }
  return out;
}`, map[string]any{"xs": []any{"a", "b"}}},

	{"string-iterate", `export function f({s}: {s: string}): any {
  const out = [];
  for (const ch of s) { out.push(ch.toUpperCase()); }
  return out.join("-");
}`, map[string]any{"s": "abc"}},

	{"deep-equal-structures", `export function f({}: {}): any {
  return {list: [[1, [2, 3]], {k: [true, null, "s"]}], nested: {a: {b: {c: 1}}}};
}`, map[string]any{}},

	{"flat-flatmap", `export function f({}: {}): any {
  const nested = [[1, 2], [3, [4, 5]]];
  return [nested.flat(), nested.flat(2), [1, 2, 3].flatMap((x) => [x, x * 10])];
}`, map[string]any{}},

	{"slice-splice", `export function f({}: {}): any {
  const a = [1, 2, 3, 4, 5];
  const removed = a.splice(1, 2, 9, 9, 9);
  return {a, removed, tail: a.slice(-2), mid: a.slice(1, 3)};
}`, map[string]any{}},

	{"undefined-variable-error", `function late() { return ghost(); }
export function f({}: {}): any { return late(); }
function ghost() { return 1; }`, map[string]any{}},

	{"array-from", `export function f({n}: {n: number}): any {
  return [Array.from({length: n}, (_, i) => i * i), Array.from("ab"), Array.from(new Set([1, 1, 2]))];
}`, map[string]any{"n": 4}},

	{"number-methods", `export function f({x}: {x: number}): any {
  return [x.toFixed(2), (x * 100).toString(), Number.isInteger(x), Number.isNaN(x / 0 * 0)];
}`, map[string]any{"x": 3.14159}},

	{"fuel-exhaustion", `export function f({}: {}): number {
  let i = 0;
  while (true) { i++; }
  return i;
}`, map[string]any{}},

	{"global-object-mutation", `export function f({}: {}): number {
  if (Math.counter == null) { Math.counter = 0; }
  Math.counter = Math.counter + 1;
  return Math.counter;
}`, map[string]any{}},
}

// TestEngineGlobalMutationIsolation verifies per-call isolation of
// writes to builtin global objects across repeated calls: the compiled
// engine must decline such programs (shared globals) and match the
// tree-walker's fresh-environment-per-call behaviour.
func TestEngineGlobalMutationIsolation(t *testing.T) {
	src := diffCorpus[len(diffCorpus)-1].src
	cf, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if got := cf.Engine(); got != "tree-walker" {
		t.Fatalf("Engine() = %q, want tree-walker (global-mutating program must be declined)", got)
	}
	for i := 0; i < 3; i++ {
		v, err := cf.Call(context.Background(), map[string]any{})
		if err != nil {
			t.Fatal(err)
		}
		if v != 1.0 {
			t.Fatalf("call %d: Math.counter = %v, want 1 (no state leak across calls)", i, v)
		}
	}
}

// runBoth executes one case under both engines, with stdout captured.
// When both engines execute the program successfully, the static
// analyzer must agree it is error-free: every differential run doubles
// as a no-false-positive oracle for the analysis tier.
func runBoth(t *testing.T, src string, args map[string]any, maxSteps int64) (anyC, anyT any, errC, errT error, outC, outT string) {
	t.Helper()
	cfC, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfT, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfT.TreeWalker = true
	var bufC, bufT bytes.Buffer
	cfC.Stdout, cfT.Stdout = &bufC, &bufT
	cfC.MaxSteps, cfT.MaxSteps = maxSteps, maxSteps
	anyC, errC = cfC.Call(context.Background(), args)
	anyT, errT = cfT.Call(context.Background(), args)
	if errC == nil && errT == nil {
		assertAnalyzerClean(t, src, cfC.Prog)
	}
	return anyC, anyT, errC, errT, bufC.String(), bufT.String()
}

// assertAnalyzerClean fails the test when the analyzer reports an
// error-severity diagnostic for a program that just executed
// successfully under both engines (a false positive would make the
// codegen loop reject working completions).
func assertAnalyzerClean(t *testing.T, src string, prog *minilang.Program) {
	t.Helper()
	for _, d := range analysis.Errors(analysis.Analyze(prog)) {
		t.Errorf("analyzer false positive on successfully-executing program:\n%s\ndiagnostic: %s", src, d)
	}
}

func TestEngineDifferentialCorpus(t *testing.T) {
	for _, tc := range diffCorpus {
		t.Run(tc.name, func(t *testing.T) {
			vC, vT, errC, errT, outC, outT := runBoth(t, tc.src, tc.args, 200_000)
			if (errC == nil) != (errT == nil) {
				t.Fatalf("engine disagreement: compiled err=%v, tree-walker err=%v", errC, errT)
			}
			if errC != nil {
				// Fuel exhaustion reports the node being evaluated when
				// the budget ran out; the two engines spend a constant
				// few steps differently (static module load), so only
				// the error kind is compared for fuel errors.
				if strings.Contains(errC.Error(), minilang.ErrFuel) && strings.Contains(errT.Error(), minilang.ErrFuel) {
					return
				}
				if errC.Error() != errT.Error() {
					t.Errorf("error text diverges:\n  compiled:    %v\n  tree-walker: %v", errC, errT)
				}
				return
			}
			if !reflect.DeepEqual(vC, vT) {
				t.Errorf("result diverges:\n  compiled:    %#v\n  tree-walker: %#v", vC, vT)
			}
			if outC != outT {
				t.Errorf("stdout diverges:\n  compiled:    %q\n  tree-walker: %q", outC, outT)
			}
		})
	}
}

// TestEngineDifferentialConsole checks console.log parity including
// per-call isolation of top-level side effects.
func TestEngineDifferentialConsole(t *testing.T) {
	src := `console.log("load");
export function f({x}: {x: number}): number {
  console.log("call", x, [1, 2], {a: x});
  return x;
}`
	cfC, _ := minilang.CompileFunction(src, "f")
	cfT, _ := minilang.CompileFunction(src, "f")
	cfT.TreeWalker = true
	var bufC, bufT bytes.Buffer
	cfC.Stdout, cfT.Stdout = &bufC, &bufT
	for i := 0; i < 3; i++ {
		if _, err := cfC.Call(context.Background(), map[string]any{"x": float64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := cfT.Call(context.Background(), map[string]any{"x": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if bufC.String() != bufT.String() {
		t.Errorf("stdout diverges:\n  compiled:    %q\n  tree-walker: %q", bufC.String(), bufT.String())
	}
}

// TestEngineDifferentialFuzz runs randomly generated straight-line
// arithmetic/string programs through both engines. The generator leans
// on constructs the LLM synthesizer emits: locals, loops, conditionals,
// array building and folding.
func TestEngineDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []string{"+", "-", "*", "%"}
	for trial := 0; trial < 60; trial++ {
		var b strings.Builder
		b.WriteString("export function f({n}: {n: number}): any {\n")
		b.WriteString("  let acc = n;\n  const out = [];\n")
		count := 2 + rng.Intn(5)
		for s := 0; s < count; s++ {
			switch rng.Intn(5) {
			case 0:
				fmt.Fprintf(&b, "  acc = acc %s %d;\n", ops[rng.Intn(len(ops))], 1+rng.Intn(9))
			case 1:
				fmt.Fprintf(&b, "  for (let i = 0; i < %d; i++) { acc = acc + i %s %d; }\n",
					1+rng.Intn(6), ops[rng.Intn(len(ops))], 1+rng.Intn(5))
			case 2:
				fmt.Fprintf(&b, "  if (acc %% 2 === 0) { acc = acc + %d; } else { acc = acc - %d; }\n",
					rng.Intn(10), rng.Intn(10))
			case 3:
				fmt.Fprintf(&b, "  out.push(acc %s %d);\n", ops[rng.Intn(len(ops))], 1+rng.Intn(9))
			case 4:
				fmt.Fprintf(&b, "  { let acc = %d; out.push(acc); }\n", rng.Intn(100))
			}
		}
		b.WriteString("  return {acc, out, sum: out.reduce((a, x) => a + x, 0)};\n}\n")
		src := b.String()
		args := map[string]any{"n": float64(rng.Intn(50))}
		vC, vT, errC, errT, _, _ := runBoth(t, src, args, 500_000)
		if (errC == nil) != (errT == nil) {
			t.Fatalf("trial %d: engine disagreement\nprogram:\n%s\ncompiled err=%v, tree err=%v", trial, src, errC, errT)
		}
		if errC == nil && !reflect.DeepEqual(vC, vT) {
			t.Fatalf("trial %d: result diverges\nprogram:\n%s\ncompiled=%#v\ntree=%#v", trial, src, vC, vT)
		}
	}
}
