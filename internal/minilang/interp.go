package minilang

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// RuntimeError is raised while executing minilang code. A generated
// function that raises a RuntimeError fails semantic validation and the
// codegen loop retries (paper §III-D Step 3).
type RuntimeError struct {
	Pos Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.Line == 0 {
		return "minilang: runtime: " + e.Msg
	}
	return fmt.Sprintf("minilang: runtime: %s at %s", e.Msg, e.Pos)
}

// ErrFuel is the message used when a program exceeds its step budget.
// Generated code is untrusted (paper §VI discusses safety); the fuel
// limit bounds runaway loops during validation.
const ErrFuel = "execution step budget exceeded"

// Env is a lexical scope.
type Env struct {
	parent *Env
	vars   map[string]*binding
}

type binding struct {
	value any
	con   bool // declared with const
}

// NewEnv returns a child scope of parent (parent may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: map[string]*binding{}}
}

// Define declares a new variable in this scope.
func (e *Env) Define(name string, v any, con bool) error {
	if _, dup := e.vars[name]; dup {
		return fmt.Errorf("duplicate declaration of %q", name)
	}
	e.vars[name] = &binding{value: v, con: con}
	return nil
}

// Lookup finds the binding for name in this or an enclosing scope.
func (e *Env) Lookup(name string) (*binding, bool) {
	for s := e; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

// Interp executes minilang programs.
type Interp struct {
	// MaxSteps bounds the number of evaluation steps; <=0 means the
	// default of 10 million.
	MaxSteps int64
	// Stdout receives console.log output; nil discards it.
	Stdout io.Writer
	// Ctx, when non-nil, is polled periodically by the step loop so a
	// canceled or timed-out caller stops generated code promptly instead
	// of burning the remaining fuel budget.
	Ctx context.Context

	steps   int64
	globals *Env
}

// NewInterp returns an interpreter with the standard global environment
// (Math, JSON, Object, Array, console, parseInt, ...).
func NewInterp() *Interp {
	in := &Interp{MaxSteps: 10_000_000}
	in.globals = NewEnv(nil)
	installGlobals(in.globals)
	return in
}

// Globals returns the global scope, so callers can add host bindings.
func (in *Interp) Globals() *Env { return in.globals }

// LoadProgram evaluates the top-level statements of prog in a child of
// the global scope and returns that scope. Function declarations become
// closures; other statements run for effect.
func (in *Interp) LoadProgram(prog *Program) (*Env, error) {
	env := NewEnv(in.globals)
	for _, s := range prog.Stmts {
		if _, c, err := in.execStmt(env, s); err != nil {
			return nil, err
		} else if c != ctrlNone {
			return nil, &RuntimeError{Pos: s.NodePos(), Msg: "break/continue/return at top level"}
		}
	}
	return env, nil
}

// CallFunction loads prog and invokes the function decl fd with named
// arguments args (the AskIt calling convention). The step budget applies
// to the whole call.
func (in *Interp) CallFunction(prog *Program, fd *FuncDecl, args map[string]any) (any, error) {
	in.steps = 0
	env, err := in.LoadProgram(prog)
	if err != nil {
		return nil, err
	}
	b, ok := env.Lookup(fd.Name)
	if !ok {
		return nil, &RuntimeError{Pos: fd.P, Msg: fmt.Sprintf("function %q not loaded", fd.Name)}
	}
	cl, ok := b.value.(*Closure)
	if !ok {
		return nil, &RuntimeError{Pos: fd.P, Msg: fmt.Sprintf("%q is not a function", fd.Name)}
	}
	mlArgs := make(map[string]any, len(args))
	for k, v := range args {
		mlArgs[k] = FromJSON(v)
	}
	if cl.Named {
		return in.callClosure(cl, []any{mapToObject(mlArgs)}, fd.P)
	}
	// Positional fallback: bind by declared order.
	pos := make([]any, len(cl.Params))
	for i, p := range cl.Params {
		pos[i] = mlArgs[p.Name]
	}
	return in.callClosure(cl, pos, fd.P)
}

func mapToObject(m map[string]any) map[string]any { return m }

// Call invokes a function value with positional arguments. Both
// engines' function values are accepted, so builtins taking callbacks
// (sort, map, Array.from, ...) work identically under either engine.
func (in *Interp) Call(fn any, args []any, at Pos) (any, error) {
	switch f := fn.(type) {
	case *Closure:
		return in.callClosure(f, args, at)
	case *compiledClosure:
		return f.invoke(in, args, at)
	case *Builtin:
		return f.Fn(in, args)
	case *CallableObj:
		return f.Builtin.Fn(in, args)
	default:
		return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("%s is not a function", TypeOf(fn))}
	}
}

func (in *Interp) callClosure(cl *Closure, args []any, at Pos) (any, error) {
	env := NewEnv(cl.Env)
	if cl.Named {
		// One object argument carrying named parameters.
		var obj map[string]any
		if len(args) == 1 {
			if m, ok := args[0].(map[string]any); ok {
				obj = m
			}
		}
		if obj == nil {
			return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("function %s expects a named-argument object", cl.Name)}
		}
		for _, p := range cl.Params {
			v, ok := obj[p.Name]
			if !ok {
				return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("missing argument %q in call to %s", p.Name, cl.Name)}
			}
			if err := env.Define(p.Name, v, false); err != nil {
				return nil, &RuntimeError{Pos: at, Msg: err.Error()}
			}
		}
	} else {
		for i, p := range cl.Params {
			var v any
			if i < len(args) {
				v = args[i]
			}
			if err := env.Define(p.Name, v, false); err != nil {
				return nil, &RuntimeError{Pos: at, Msg: err.Error()}
			}
		}
	}
	if cl.Expr != nil {
		return in.eval(env, cl.Expr)
	}
	v, c, err := in.execStmt(env, cl.Body)
	if err != nil {
		return nil, err
	}
	if c == ctrlReturn {
		return v, nil
	}
	return nil, nil
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

func (in *Interp) tick(at Pos) error {
	in.steps++
	limit := in.MaxSteps
	if limit <= 0 {
		limit = 10_000_000
	}
	if in.steps > limit {
		return &RuntimeError{Pos: at, Msg: ErrFuel}
	}
	// Poll the caller's context every 1024 steps: cheap enough for the
	// hot loop, frequent enough that cancellation lands in microseconds.
	if in.steps&1023 == 0 && in.Ctx != nil {
		if err := in.Ctx.Err(); err != nil {
			return fmt.Errorf("minilang: execution canceled at %s: %w", at, err)
		}
	}
	return nil
}

func (in *Interp) execStmt(env *Env, s Stmt) (any, ctrl, error) {
	if err := in.tick(s.NodePos()); err != nil {
		return nil, ctrlNone, err
	}
	switch st := s.(type) {
	case *BlockStmt:
		inner := NewEnv(env)
		for _, sub := range st.Stmts {
			v, c, err := in.execStmt(inner, sub)
			if err != nil || c != ctrlNone {
				return v, c, err
			}
		}
		return nil, ctrlNone, nil
	case *VarDecl:
		var v any
		if st.Init != nil {
			var err error
			v, err = in.eval(env, st.Init)
			if err != nil {
				return nil, ctrlNone, err
			}
		}
		if err := env.Define(st.Name, v, st.Keyword == "const"); err != nil {
			return nil, ctrlNone, &RuntimeError{Pos: st.P, Msg: err.Error()}
		}
		return nil, ctrlNone, nil
	case *AssignStmt:
		return nil, ctrlNone, in.assign(env, st)
	case *IncDecStmt:
		cur, err := in.eval(env, st.Target)
		if err != nil {
			return nil, ctrlNone, err
		}
		delta := 1.0
		if st.Op == "--" {
			delta = -1
		}
		return nil, ctrlNone, in.storeTo(env, st.Target, ToNumber(cur)+delta)
	case *ExprStmt:
		_, err := in.eval(env, st.X)
		return nil, ctrlNone, err
	case *IfStmt:
		cond, err := in.eval(env, st.Cond)
		if err != nil {
			return nil, ctrlNone, err
		}
		if Truthy(cond) {
			return in.execStmt(env, st.Then)
		}
		if st.Else != nil {
			return in.execStmt(env, st.Else)
		}
		return nil, ctrlNone, nil
	case *WhileStmt:
		for {
			cond, err := in.eval(env, st.Cond)
			if err != nil {
				return nil, ctrlNone, err
			}
			if !Truthy(cond) {
				return nil, ctrlNone, nil
			}
			v, c, err := in.execStmt(env, st.Body)
			if err != nil {
				return nil, ctrlNone, err
			}
			switch c {
			case ctrlReturn:
				return v, c, nil
			case ctrlBreak:
				return nil, ctrlNone, nil
			}
		}
	case *ForStmt:
		loopEnv := NewEnv(env)
		if st.Init != nil {
			if _, c, err := in.execStmt(loopEnv, st.Init); err != nil || c != ctrlNone {
				return nil, ctrlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := in.eval(loopEnv, st.Cond)
				if err != nil {
					return nil, ctrlNone, err
				}
				if !Truthy(cond) {
					return nil, ctrlNone, nil
				}
			}
			v, c, err := in.execStmt(loopEnv, st.Body)
			if err != nil {
				return nil, ctrlNone, err
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if c == ctrlBreak {
				return nil, ctrlNone, nil
			}
			if st.Post != nil {
				if _, _, err := in.execStmt(loopEnv, st.Post); err != nil {
					return nil, ctrlNone, err
				}
			}
		}
	case *ForOfStmt:
		seq, err := in.eval(env, st.Seq)
		if err != nil {
			return nil, ctrlNone, err
		}
		items, err := iterate(seq, st.In, st.P)
		if err != nil {
			return nil, ctrlNone, err
		}
		for _, item := range items {
			iterEnv := NewEnv(env)
			if err := iterEnv.Define(st.Name, item, st.Keyword == "const"); err != nil {
				return nil, ctrlNone, &RuntimeError{Pos: st.P, Msg: err.Error()}
			}
			v, c, err := in.execStmt(iterEnv, st.Body)
			if err != nil {
				return nil, ctrlNone, err
			}
			if c == ctrlReturn {
				return v, c, nil
			}
			if c == ctrlBreak {
				return nil, ctrlNone, nil
			}
		}
		return nil, ctrlNone, nil
	case *ReturnStmt:
		var v any
		if st.Value != nil {
			var err error
			v, err = in.eval(env, st.Value)
			if err != nil {
				return nil, ctrlNone, err
			}
		}
		return v, ctrlReturn, nil
	case *BreakStmt:
		return nil, ctrlBreak, nil
	case *ContinueStmt:
		return nil, ctrlContinue, nil
	case *ThrowStmt:
		v, err := in.eval(env, st.Value)
		if err != nil {
			return nil, ctrlNone, err
		}
		msg := ToString(v)
		if m, ok := v.(map[string]any); ok {
			if s, ok := m["message"].(string); ok {
				msg = s
			}
		}
		return nil, ctrlNone, &RuntimeError{Pos: st.P, Msg: "thrown: " + msg}
	case *FuncDecl:
		cl := &Closure{Name: st.Name, Params: st.Params, Named: st.Named, Body: st.Body, Env: env}
		if err := env.Define(st.Name, cl, false); err != nil {
			return nil, ctrlNone, &RuntimeError{Pos: st.P, Msg: err.Error()}
		}
		return nil, ctrlNone, nil
	default:
		return nil, ctrlNone, &RuntimeError{Pos: s.NodePos(), Msg: fmt.Sprintf("unhandled statement %T", s)}
	}
}

func iterate(seq any, asIn bool, at Pos) ([]any, error) {
	switch x := seq.(type) {
	case *Array:
		if asIn {
			out := make([]any, len(x.Elems))
			for i := range x.Elems {
				out[i] = float64(i)
			}
			return out, nil
		}
		return append([]any(nil), x.Elems...), nil
	case string:
		var out []any
		for _, r := range x {
			out = append(out, string(r))
		}
		return out, nil
	case map[string]any:
		keys := sortedKeys(x)
		out := make([]any, len(keys))
		for i, k := range keys {
			if asIn {
				out[i] = k
			} else {
				out[i] = x[k]
			}
		}
		return out, nil
	case *SetVal:
		return x.Values(), nil
	case *MapVal:
		keys := x.Keys()
		out := make([]any, len(keys))
		for i, k := range keys {
			out[i] = NewArray(k, x.Get(k))
		}
		return out, nil
	default:
		return nil, &RuntimeError{Pos: at, Msg: fmt.Sprintf("value of type %s is not iterable", TypeOf(seq))}
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion order is not tracked; sorted order keeps runs deterministic
	sortStrings(keys)
	return keys
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func (in *Interp) assign(env *Env, st *AssignStmt) error {
	val, err := in.eval(env, st.Value)
	if err != nil {
		return err
	}
	if st.Op != "=" {
		cur, err := in.eval(env, st.Target)
		if err != nil {
			return err
		}
		val, err = binaryOp(strings.TrimSuffix(st.Op, "="), cur, val, st.P)
		if err != nil {
			return err
		}
	}
	return in.storeTo(env, st.Target, val)
}

func (in *Interp) storeTo(env *Env, target Expr, val any) error {
	switch t := target.(type) {
	case *Ident:
		b, ok := env.Lookup(t.Name)
		if !ok {
			return &RuntimeError{Pos: t.P, Msg: fmt.Sprintf("assignment to undeclared variable %q", t.Name)}
		}
		if b.con {
			return &RuntimeError{Pos: t.P, Msg: fmt.Sprintf("assignment to constant %q", t.Name)}
		}
		b.value = val
		return nil
	case *MemberExpr:
		obj, err := in.eval(env, t.X)
		if err != nil {
			return err
		}
		m, ok := obj.(map[string]any)
		if !ok {
			return &RuntimeError{Pos: t.P, Msg: fmt.Sprintf("cannot set property %q on %s", t.Name, TypeOf(obj))}
		}
		m[t.Name] = val
		return nil
	case *IndexExpr:
		obj, err := in.eval(env, t.X)
		if err != nil {
			return err
		}
		idx, err := in.eval(env, t.Index)
		if err != nil {
			return err
		}
		switch c := obj.(type) {
		case *Array:
			i := int(ToNumber(idx))
			if i < 0 {
				return &RuntimeError{Pos: t.P, Msg: fmt.Sprintf("negative array index %d", i)}
			}
			for len(c.Elems) <= i {
				c.Elems = append(c.Elems, nil)
			}
			c.Elems[i] = val
			return nil
		case map[string]any:
			c[ToString(idx)] = val
			return nil
		default:
			return &RuntimeError{Pos: t.P, Msg: fmt.Sprintf("cannot index-assign on %s", TypeOf(obj))}
		}
	default:
		return &RuntimeError{Pos: target.NodePos(), Msg: "invalid assignment target"}
	}
}
