package minilang

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func optimizeSrc(t *testing.T, src string) string {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Format(Optimize(prog))
}

func TestOptimizeFoldsConstants(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring expected in the optimized output
	}{
		{"const x = 1 + 2 * 3;", "const x = 7;"},
		{"const x = \"a\" + \"b\";", `const x = "ab";`},
		{"const x = 10 / 4;", "const x = 2.5;"},
		{"const x = 2 ** 8;", "const x = 256;"},
		{"const x = !false;", "const x = true;"},
		{"const x = -(3 + 4);", "const x = -7;"},
		{"const x = 1 < 2;", "const x = true;"},
		{"const x = true && false;", "const x = false;"},
		{"const x = null ?? 5;", "const x = 5;"},
		{"const x = true ? 1 : 2;", "const x = 1;"},
		{"const x = typeof 3;", `const x = "number";`},
		{"const x = `v=${1 + 1}`;", `const x = "v=2";`},
	}
	for _, c := range cases {
		got := optimizeSrc(t, c.src)
		if !strings.Contains(got, c.want) {
			t.Errorf("Optimize(%q) = %q, want to contain %q", c.src, got, c.want)
		}
	}
}

func TestOptimizeSimplifiesBranches(t *testing.T) {
	src := `
function f(x) {
  if (1 < 2) {
    return x;
  } else {
    return 0;
  }
}`
	got := optimizeSrc(t, src)
	if strings.Contains(got, "if") || strings.Contains(got, "return 0") {
		t.Errorf("dead branch survived:\n%s", got)
	}
	src2 := "function g(x) { while (false) { x = x + 1; } return x; }"
	got2 := optimizeSrc(t, src2)
	if strings.Contains(got2, "while") {
		t.Errorf("dead loop survived:\n%s", got2)
	}
}

func TestOptimizeKeepsDynamicCode(t *testing.T) {
	src := "function f(x) { return x + 1; }"
	got := optimizeSrc(t, src)
	if !strings.Contains(got, "x + 1") {
		t.Errorf("dynamic expression altered:\n%s", got)
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	prog, err := Parse("const x = 1 + 2;")
	if err != nil {
		t.Fatal(err)
	}
	before := Format(prog)
	_ = Optimize(prog)
	if Format(prog) != before {
		t.Error("Optimize mutated its input")
	}
}

// Property: Optimize preserves semantics for random arithmetic
// functions with embedded constants.
func TestQuickOptimizePreservesSemantics(t *testing.T) {
	f := func(seed uint32) bool {
		src := randomArithFunc(int(seed))
		cf1, err := CompileFunction(src, "g")
		if err != nil {
			return false
		}
		opt := Optimize(cf1.Prog)
		if err := Check(opt); err != nil {
			return false
		}
		cf2 := &CompiledFunc{Prog: opt, Decl: opt.Funcs()[cf1.Decl.Name]}
		if cf2.Decl == nil {
			return false
		}
		for _, n := range []float64{0, 1, -2, 9} {
			a, err1 := cf1.Call(context.Background(), map[string]any{"x": n})
			b, err2 := cf2.Call(context.Background(), map[string]any{"x": n})
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The ablation motivation: folding reduces interpreter steps for
// constant-heavy generated code.
func BenchmarkInterpUnoptimized(b *testing.B) {
	benchOptimize(b, false)
}

func BenchmarkInterpOptimized(b *testing.B) {
	benchOptimize(b, true)
}

func benchOptimize(b *testing.B, optimize bool) {
	src := `
export function f({n}: {n: number}): number {
  let total = 0;
  for (let i = 0; i < n; i++) {
    total += (2 * 3 + 4) * (10 - 8) + (1 + 1);
  }
  return total;
}`
	cf, err := CompileFunction(src, "f")
	if err != nil {
		b.Fatal(err)
	}
	if optimize {
		prog := Optimize(cf.Prog)
		cf = &CompiledFunc{Prog: prog, Decl: prog.Funcs()["f"]}
	}
	args := map[string]any{"n": 2000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cf.Call(context.Background(), args); err != nil {
			b.Fatal(err)
		}
	}
}
