package analysis

import (
	"testing"

	"repro/internal/minilang"
	"repro/internal/tasks"
)

// TestCatalogSourcesAnalyzerClean proves every reference solution in the
// task catalogs — both the generated-style Source the simulated model
// emits into the codegen loop and the hand-written Figure-5 baselines —
// passes the analyzer with zero error diagnostics. Any error here would
// make the codegen loop reject its own oracle.
func TestCatalogSourcesAnalyzerClean(t *testing.T) {
	catalogs := map[string]*tasks.Catalog{
		"common":    tasks.Common,
		"humaneval": tasks.HumanEval,
		"word":      tasks.Word,
	}
	for cname, cat := range catalogs {
		for _, spec := range cat.All() {
			if !spec.Codable {
				continue
			}
			params := make([]string, len(spec.Params))
			for i, p := range spec.Params {
				params[i] = p.Name
			}
			for variant, src := range map[string]string{
				"source":      spec.Source("f", params),
				"handwritten": spec.HandwrittenSource("f", params),
			} {
				name := cname + "/" + spec.ID + "/" + variant
				t.Run(name, func(t *testing.T) {
					prog, err := minilang.Parse(src)
					if err != nil {
						t.Fatalf("parse: %v\n%s", err, src)
					}
					if err := minilang.Check(prog); err != nil {
						t.Fatalf("check: %v\n%s", err, src)
					}
					for _, d := range Errors(Analyze(prog)) {
						t.Errorf("analyzer error on catalog program:\n%s\ndiagnostic: %s", src, d)
					}
				})
			}
		}
	}
}
