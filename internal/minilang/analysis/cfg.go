package analysis

import (
	"repro/internal/minilang"
	"repro/internal/types"
)

// The control-flow graph. Each function body (and the top level) lowers
// to basic blocks of linear steps connected by edges; break/continue/
// return/throw terminate blocks, loops and conditionals branch. The
// graph drives three analyses: reachability (unreachable code),
// completion paths (missing return), and a forward definite-assignment
// dataflow.

// step is one linear unit inside a block: a simple statement, a
// condition/sequence expression evaluated at a branch point, or a
// loop-variable binding.
type step struct {
	stmt minilang.Stmt // simple statement, or nil
	expr minilang.Expr // condition/sequence expression, or nil
	bind string        // variable assigned by this step (for-of binding), or ""
	pos  minilang.Pos
}

type block struct {
	id    int
	steps []step
	succs []*block
}

// fallEdge records one way the function can complete without returning
// a value: a bare `return;` or control falling off the end of the body.
type fallEdge struct {
	from *block
	pos  minilang.Pos
	bare bool
}

type cfg struct {
	entry     *block
	blocks    []*block
	fallEdges []fallEdge
}

type loopFrame struct{ brk, cont *block }

type cfgBuilder struct {
	g     *cfg
	loops []loopFrame
}

// buildCFG lowers a statement list to a CFG. endPos positions the
// fall-off-the-end completion edge (the function declaration).
func buildCFG(stmts []minilang.Stmt, endPos minilang.Pos) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.entry = b.newBlock()
	if end := b.stmtList(stmts, b.g.entry); end != nil {
		b.g.fallEdges = append(b.g.fallEdges, fallEdge{from: end, pos: endPos})
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *block) { from.succs = append(from.succs, to) }

// stmtList threads the open block through the statements. It returns
// the block control falls out of, or nil when every path terminated.
// Statements after a terminator open a fresh predecessor-less block —
// the reachability pass reports its first step as unreachable.
func (b *cfgBuilder) stmtList(stmts []minilang.Stmt, cur *block) *block {
	for _, s := range stmts {
		if _, ok := s.(*minilang.FuncDecl); ok {
			continue // hoisted declaration; body analyzed as its own unit
		}
		if cur == nil {
			cur = b.newBlock()
			// Seed a marker step so the dead region reports at the
			// first skipped statement even when the statement itself
			// lowers into child blocks (loops, conditionals).
			cur.steps = append(cur.steps, step{pos: s.NodePos()})
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s minilang.Stmt, cur *block) *block {
	switch st := s.(type) {
	case *minilang.BlockStmt:
		return b.stmtList(st.Stmts, cur)
	case *minilang.VarDecl, *minilang.AssignStmt, *minilang.IncDecStmt, *minilang.ExprStmt:
		cur.steps = append(cur.steps, step{stmt: st, pos: st.NodePos()})
		return cur
	case *minilang.ReturnStmt:
		cur.steps = append(cur.steps, step{stmt: st, pos: st.P})
		if st.Value == nil {
			b.g.fallEdges = append(b.g.fallEdges, fallEdge{from: cur, pos: st.P, bare: true})
		}
		return nil
	case *minilang.ThrowStmt:
		cur.steps = append(cur.steps, step{stmt: st, pos: st.P})
		return nil // abnormal exit: no completion edge
	case *minilang.BreakStmt:
		if n := len(b.loops); n > 0 {
			link(cur, b.loops[n-1].brk)
		}
		return nil
	case *minilang.ContinueStmt:
		if n := len(b.loops); n > 0 {
			link(cur, b.loops[n-1].cont)
		}
		return nil
	case *minilang.IfStmt:
		cur.steps = append(cur.steps, step{expr: st.Cond, pos: st.Cond.NodePos()})
		t, known := constTruthy(st.Cond)
		join := b.newBlock()
		thenB := b.newBlock()
		if !known || t {
			link(cur, thenB)
		}
		if end := b.stmt(st.Then, thenB); end != nil {
			link(end, join)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			if !known || !t {
				link(cur, elseB)
			}
			if end := b.stmt(st.Else, elseB); end != nil {
				link(end, join)
			}
		} else if !known || !t {
			link(cur, join)
		}
		return join
	case *minilang.WhileStmt:
		head := b.newBlock()
		link(cur, head)
		head.steps = append(head.steps, step{expr: st.Cond, pos: st.Cond.NodePos()})
		t, known := constTruthy(st.Cond)
		body := b.newBlock()
		after := b.newBlock()
		if !known || t {
			link(head, body)
		}
		if !known || !t {
			link(head, after) // a known-true condition has no normal exit
		}
		b.loops = append(b.loops, loopFrame{brk: after, cont: head})
		if end := b.stmt(st.Body, body); end != nil {
			link(end, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after
	case *minilang.ForStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		head := b.newBlock()
		link(cur, head)
		alwaysTrue, knownFalse := true, false
		if st.Cond != nil {
			head.steps = append(head.steps, step{expr: st.Cond, pos: st.Cond.NodePos()})
			t, known := constTruthy(st.Cond)
			alwaysTrue = known && t
			knownFalse = known && !t
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		if !knownFalse {
			link(head, body)
		}
		if !alwaysTrue {
			link(head, after)
		}
		b.loops = append(b.loops, loopFrame{brk: after, cont: post})
		if end := b.stmt(st.Body, body); end != nil {
			link(end, post)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if st.Post != nil {
			if end := b.stmt(st.Post, post); end != nil {
				link(end, head)
			}
		} else {
			link(post, head)
		}
		return after
	case *minilang.ForOfStmt:
		cur.steps = append(cur.steps, step{expr: st.Seq, pos: st.Seq.NodePos()})
		head := b.newBlock()
		link(cur, head)
		head.steps = append(head.steps, step{bind: st.Name, pos: st.P})
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		link(head, after) // empty sequence: zero iterations
		b.loops = append(b.loops, loopFrame{brk: after, cont: head})
		if end := b.stmt(st.Body, body); end != nil {
			link(end, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after
	}
	return cur
}

// reachable marks every block reachable from entry.
func (g *cfg) reachable() map[*block]bool {
	reach := make(map[*block]bool, len(g.blocks))
	stack := []*block{g.entry}
	reach[g.entry] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reach
}

// preds computes the predecessor count of every block.
func (g *cfg) preds() map[*block]int {
	n := make(map[*block]int, len(g.blocks))
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			n[s]++
		}
	}
	return n
}

// flowUnit runs the CFG passes over one function body (or the top
// level / a closure body when fd is nil).
func (a *analyzer) flowUnit(stmts []minilang.Stmt, fd *minilang.FuncDecl) {
	endPos := minilang.Pos{}
	if fd != nil {
		endPos = fd.P
	}
	g := buildCFG(stmts, endPos)
	reach := g.reachable()
	a.reportUnreachable(g, reach)
	a.missingReturn(g, reach, fd)
	a.definiteAssignment(g, reach, stmts)
}

// reportUnreachable flags the head of every dead region: an unreached
// block with no predecessors (interior dead blocks hang off it).
func (a *analyzer) reportUnreachable(g *cfg, reach map[*block]bool) {
	preds := g.preds()
	for _, blk := range g.blocks {
		if reach[blk] || preds[blk] > 0 || len(blk.steps) == 0 {
			continue
		}
		a.add(blk.steps[0].pos, SevError, CodeUnreachable, "unreachable code")
	}
}

// missingReturn reports completion paths of a function whose declared
// return type requires a value. Declared `any` downgrades to a warning
// (undefined is a representable any); void and unions containing void
// are exempt.
func (a *analyzer) missingReturn(g *cfg, reach map[*block]bool, fd *minilang.FuncDecl) {
	if fd == nil || fd.ReturnType == nil {
		return
	}
	sev, need := returnRequirement(fd.ReturnType)
	if !need {
		return
	}
	for _, fe := range g.fallEdges {
		if !reach[fe.from] {
			continue
		}
		if fe.bare {
			a.add(fe.pos, sev, CodeMissingReturn,
				"bare return in function %q, which declares return type %s", fd.Name, fd.ReturnType.TS())
		} else {
			a.add(fe.pos, sev, CodeMissingReturn,
				"function %q declares return type %s but can complete without returning a value", fd.Name, fd.ReturnType.TS())
		}
	}
}

func returnRequirement(t types.Type) (Severity, bool) {
	switch t.Kind() {
	case types.KindVoid:
		return 0, false
	case types.KindAny:
		return SevWarn, true
	case types.KindUnion:
		// A union is inspectable only through validation; probe whether
		// it accepts null (undefined returns decode to null).
		if t.Validate(nil) == nil {
			return 0, false
		}
		return SevError, true
	default:
		return SevError, true
	}
}

// ---------------------------------------------------------------------------
// Definite assignment

// definiteAssignment runs a forward may-be-unassigned dataflow over the
// CFG for variables declared without an initializer. Findings are
// warnings: the runtime yields undefined for such reads, so a program
// can execute successfully through them.
func (a *analyzer) definiteAssignment(g *cfg, reach map[*block]bool, stmts []minilang.Stmt) {
	tracked := trackedVars(stmts)
	if len(tracked) == 0 {
		return
	}

	all := uint64(0)
	for _, bit := range tracked {
		all |= 1 << bit
	}
	in := make(map[*block]uint64, len(g.blocks))
	out := make(map[*block]uint64, len(g.blocks))
	for _, blk := range g.blocks {
		in[blk], out[blk] = all, all
	}
	in[g.entry] = 0
	out[g.entry] = transferDA(g.entry, 0, tracked, nil)

	preds := map[*block][]*block{}
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if !reach[blk] {
				continue
			}
			inSet := all
			if blk == g.entry {
				inSet = 0
			} else {
				for _, p := range preds[blk] {
					if reach[p] {
						inSet &= out[p]
					}
				}
			}
			outSet := transferDA(blk, inSet, tracked, nil)
			if inSet != in[blk] || outSet != out[blk] {
				in[blk], out[blk] = inSet, outSet
				changed = true
			}
		}
	}

	// Reporting pass over the stable solution, one finding per variable.
	reported := map[string]bool{}
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		transferDA(blk, in[blk], tracked, func(name string, pos minilang.Pos) {
			if !reported[name] {
				reported[name] = true
				a.add(pos, SevWarn, CodeUseUnassigned, "variable %q may be used before it is assigned", name)
			}
		})
	}
}

// trackedVars selects the variables the dataflow follows: declared in
// this unit without an initializer, never redeclared under the same
// name, and never assigned from inside a nested function (a closure
// could assign at any time).
func trackedVars(stmts []minilang.Stmt) map[string]uint {
	declCount := map[string]int{}
	noInit := map[string]bool{}
	closureAssigned := map[string]bool{}
	var walkUnit func(n minilang.Node, inClosure bool)
	walkUnit = func(n minilang.Node, inClosure bool) {
		walk(n, func(m minilang.Node) bool {
			if m != n && isFuncNode(m) {
				walkUnit(funcBody(m), true)
				return false
			}
			switch x := m.(type) {
			case *minilang.VarDecl:
				if !inClosure {
					declCount[x.Name]++
					if x.Init == nil {
						noInit[x.Name] = true
					}
				}
			case *minilang.ForOfStmt:
				if !inClosure {
					declCount[x.Name]++
				}
			case *minilang.AssignStmt:
				if id, ok := x.Target.(*minilang.Ident); ok && inClosure {
					closureAssigned[id.Name] = true
				}
			case *minilang.IncDecStmt:
				if id, ok := x.Target.(*minilang.Ident); ok && inClosure {
					closureAssigned[id.Name] = true
				}
			}
			return true
		})
	}
	for _, s := range stmts {
		if fd, ok := s.(*minilang.FuncDecl); ok {
			// Nested declarations are separate units, but assignments
			// inside them still close over this unit's variables.
			walkUnit(fd.Body, true)
			continue
		}
		walkUnit(s, false)
	}

	tracked := map[string]uint{}
	bit := uint(0)
	for name := range noInit {
		if declCount[name] == 1 && !closureAssigned[name] && bit < 64 {
			tracked[name] = bit
			bit++
		}
	}
	return tracked
}

// funcBody extracts the analyzable body of a function-like node.
func funcBody(n minilang.Node) minilang.Node {
	switch x := n.(type) {
	case *minilang.FuncDecl:
		return x.Body
	case *minilang.FuncLit:
		return x.Body
	case *minilang.ArrowFunc:
		if x.Body != nil {
			return x.Body
		}
		return x.Expr
	}
	return nil
}

// transferDA pushes the definitely-assigned set through one block,
// reporting reads of possibly-unassigned variables via onUse.
func transferDA(blk *block, set uint64, tracked map[string]uint, onUse func(name string, pos minilang.Pos)) uint64 {
	use := func(e minilang.Expr) {
		if onUse == nil || e == nil {
			return
		}
		exprReads(e, func(name string, pos minilang.Pos) {
			if bit, ok := tracked[name]; ok && set&(1<<bit) == 0 {
				onUse(name, pos)
			}
		})
	}
	assign := func(name string) {
		if bit, ok := tracked[name]; ok {
			set |= 1 << bit
		}
	}
	for _, st := range blk.steps {
		if st.expr != nil {
			use(st.expr)
		}
		if st.bind != "" {
			assign(st.bind)
		}
		switch s := st.stmt.(type) {
		case *minilang.VarDecl:
			use(s.Init)
			if s.Init != nil {
				assign(s.Name)
			}
		case *minilang.AssignStmt:
			use(s.Value)
			switch t := s.Target.(type) {
			case *minilang.Ident:
				if s.Op != "=" {
					use(t) // compound assignment reads before it writes
				}
				assign(t.Name)
			case *minilang.MemberExpr:
				use(t.X)
			case *minilang.IndexExpr:
				use(t.X)
				use(t.Index)
			}
		case *minilang.IncDecStmt:
			if t, ok := s.Target.(*minilang.Ident); ok {
				use(t)
				assign(t.Name)
			} else {
				use(s.Target)
			}
		case *minilang.ExprStmt:
			use(s.X)
		case *minilang.ReturnStmt:
			use(s.Value)
		case *minilang.ThrowStmt:
			use(s.Value)
		}
	}
	return set
}
