package analysis

import (
	"strings"
	"testing"

	"repro/internal/minilang"
)

func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	prog, err := minilang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minilang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return Analyze(prog)
}

type wantDiag struct {
	code string
	sev  Severity
	line int
	sub  string // substring of the message
}

func TestAnalyzeFindings(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []wantDiag
	}{
		{
			"unreachable-after-return",
			`export function f({n}: {n: number}): number {
  return n;
  let x = 1;
}`,
			[]wantDiag{
				{CodeUnreachable, SevError, 3, "unreachable"},
				{CodeUnused, SevWarn, 3, `"x"`},
			},
		},
		{
			"unreachable-after-both-branches-return",
			`export function f({n}: {n: number}): number {
  if (n > 0) { return 1; } else { return 2; }
  n = n + 1;
}`,
			[]wantDiag{{CodeUnreachable, SevError, 3, "unreachable"}},
		},
		{
			"missing-return-on-else-path",
			`export function f({n}: {n: number}): number {
  if (n > 0) {
    return n;
  }
}`,
			[]wantDiag{{CodeMissingReturn, SevError, 1, "can complete without returning"}},
		},
		{
			"bare-return-in-typed-function",
			`export function f({n}: {n: number}): number {
  if (n > 0) {
    return;
  }
  return n;
}`,
			[]wantDiag{{CodeMissingReturn, SevError, 3, "bare return"}},
		},
		{
			"void-function-needs-no-return",
			`export function f({msg}: {msg: string}): void {
  console.log(msg);
}`,
			nil,
		},
		{
			"use-before-assignment",
			`export function f({n}: {n: number}): number {
  let x;
  if (n > 0) { x = 1; }
  return x;
}`,
			[]wantDiag{{CodeUseUnassigned, SevWarn, 4, `"x"`}},
		},
		{
			"assigned-on-all-paths-is-clean",
			`export function f({n}: {n: number}): number {
  let x;
  if (n > 0) { x = 1; } else { x = 2; }
  return x;
}`,
			nil,
		},
		{
			"unused-variable",
			`export function f({n}: {n: number}): number {
  const dead = n * 2;
  return n;
}`,
			[]wantDiag{{CodeUnused, SevWarn, 2, `"dead"`}},
		},
		{
			"unused-helper-function",
			`function helper(x) { return x; }
export function f({n}: {n: number}): number {
  return n;
}`,
			[]wantDiag{{CodeUnused, SevWarn, 1, `"helper"`}},
		},
		{
			"call-of-number",
			`export function f({n}: {n: number}): number {
  const x = 5;
  return x(n);
}`,
			[]wantDiag{
				{CodeNotCallable, SevError, 3, `"x"`},
			},
		},
		{
			"index-of-scalar",
			`export function f({n}: {n: number}): number {
  const x = true;
  return x[0];
}`,
			[]wantDiag{{CodeScalarIndex, SevError, 3, "always boolean"}},
		},
		{
			"index-of-string-is-fine",
			`export function f({s}: {s: string}): string {
  return s[0];
}`,
			nil,
		},
		{
			"positional-arity-too-few",
			`function add(a, b) { return a + b; }
export function f({n}: {n: number}): number {
  return add(n);
}`,
			[]wantDiag{{CodeArity, SevError, 3, `"add" takes 2`}},
		},
		{
			"positional-arity-too-many-warns",
			`function id(a) { return a; }
export function f({n}: {n: number}): number {
  return id(n, n);
}`,
			[]wantDiag{{CodeArity, SevWarn, 3, "extras are ignored"}},
		},
		{
			"named-call-missing-key",
			`export function f({a, b}: {a: number, b: number}): number {
  if (a === 0) { return b; }
  return f({a: a - 1});
}`,
			[]wantDiag{{CodeArity, SevError, 3, `missing named argument "b"`}},
		},
		{
			"builtin-arity-too-few",
			`export function f({n}: {n: number}): number {
  return Math.pow(n) + parseInt();
}`,
			[]wantDiag{
				{CodeBuiltinArity, SevError, 2, "Math.pow requires at least 2"},
				{CodeBuiltinArity, SevError, 2, "parseInt requires at least 1"},
			},
		},
		{
			"unknown-math-member",
			`export function f({n}: {n: number}): number {
  return Math.clamp(n, 0, 1);
}`,
			[]wantDiag{{CodeNotCallable, SevError, 2, "Math.clamp"}},
		},
		{
			"math-constant-call",
			`export function f({n}: {n: number}): number {
  return Math.PI(n);
}`,
			[]wantDiag{{CodeNotCallable, SevError, 2, "Math.PI is a constant"}},
		},
		{
			"while-true-no-exit",
			`export function f({n}: {n: number}): number {
  let i = 0;
  while (true) { i++; }
  return i;
}`,
			[]wantDiag{
				{CodeNonTermination, SevError, 3, "always true"},
				{CodeUnreachable, SevError, 4, "unreachable"},
			},
		},
		{
			"while-true-with-break-is-fine",
			`export function f({n}: {n: number}): number {
  let i = 0;
  while (true) { i++; if (i > n) { break; } }
  return i;
}`,
			nil,
		},
		{
			"while-true-with-return-is-fine",
			`export function f({n}: {n: number}): number {
  while (true) { if (n > 0) { return n; } n = n + 1; }
}`,
			nil,
		},
		{
			"frozen-condition-warns",
			`export function f({n}: {n: number}): number {
  let total = 0;
  while (n > 0) { total = total + 1; }
  return total;
}`,
			[]wantDiag{{CodeNonTermination, SevWarn, 3, "never modified"}},
		},
		{
			"for-without-post-frozen",
			`export function f({n}: {n: number}): number {
  let total = 0;
  for (let i = 0; i < n; ) { total = total + i; }
  return total;
}`,
			[]wantDiag{{CodeNonTermination, SevWarn, 3, "never modified"}},
		},
		{
			"frozen-condition-with-call-is-spared",
			`export function f({n}: {n: number}): number {
  let total = 0;
  while (n > 0) { total = total + Math.abs(n); }
  return total;
}`,
			nil,
		},
		{
			"clean-program",
			`function helper(x) { return x * 2; }
export function f({xs}: {xs: number[]}): number {
  let total = 0;
  for (const x of xs) {
    total = total + helper(x);
  }
  return total;
}`,
			nil,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := analyzeSrc(t, tc.src)
			if len(diags) != len(tc.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(tc.want), renderDiags(diags))
			}
			for i, w := range tc.want {
				d := diags[i]
				if d.Code != w.code || d.Sev != w.sev {
					t.Errorf("diag %d = %s, want %s/%s", i, d, w.code, w.sev)
				}
				if d.Pos.Line != w.line {
					t.Errorf("diag %d at line %d, want line %d: %s", i, d.Pos.Line, w.line, d)
				}
				if !strings.Contains(d.Msg, w.sub) {
					t.Errorf("diag %d message %q does not contain %q", i, d.Msg, w.sub)
				}
			}
		})
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestVerify checks the error-wrapping entry point the codegen loop
// uses: warnings never reject, errors do, and positions survive.
func TestVerify(t *testing.T) {
	prog, err := minilang.Parse(`export function f({n}: {n: number}): number {
  const unused = 1;
  return n;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(prog); err != nil {
		t.Fatalf("warnings must not reject: %v", err)
	}

	prog, err = minilang.Parse(`export function f({n}: {n: number}): number {
  if (n > 0) { return n; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	verr := Verify(prog)
	if verr == nil {
		t.Fatal("missing return must reject")
	}
	de, ok := verr.(*DiagError)
	if !ok {
		t.Fatalf("Verify returned %T, want *DiagError", verr)
	}
	if len(de.Diags) != 1 || de.Diags[0].Code != CodeMissingReturn {
		t.Fatalf("unexpected diags: %v", de.Diags)
	}
	if de.Diags[0].Pos.Line != 1 {
		t.Fatalf("diag position = %v, want line 1", de.Diags[0].Pos)
	}
	if !strings.Contains(verr.Error(), "static analysis:") {
		t.Fatalf("error text = %q", verr.Error())
	}
}
