// Package analysis is the deep static-analysis tier over parsed
// minilang programs. minilang.Check stops at the paper's "syntactic
// check" (§III-D Step 3): scoping, const reassignment, break/continue
// placement. This package layers real program analysis on top:
//
//   - CFG construction per function with unreachable-code detection and
//     missing-return-on-path detection (cfg.go)
//   - definite-assignment dataflow over the CFG (cfg.go)
//   - a flow-insensitive type/shape lattice (number/string/bool/array/
//     object/func) flagging calls of non-callables, indexing of
//     scalars, and arity mismatches against declared functions and
//     builtins (shape.go)
//   - unused-variable/function detection (shape.go)
//   - cheap non-termination heuristics for while(true)-style loops
//     whose condition can never change and whose body never breaks
//     (loops.go)
//
// The analyzer's contract with the codegen loop is asymmetric:
// error-severity diagnostics reject a completion before any example is
// executed, so they must be sound against the runtime — a program both
// engines execute successfully must produce zero errors (enforced by
// the differential corpus and FuzzEngineDiff). Findings that a program
// could survive at runtime (unused variables, maybe-unassigned uses,
// suspicious-but-enterable loops) are warnings: surfaced by
// `minirun -lint` and in feedback, never grounds for rejection.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/minilang"
)

// Severity ranks a diagnostic. Errors reject generated code before
// example execution; warnings are advisory.
type Severity int

// The two severities.
const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Diagnostic codes, one per analysis pass finding kind.
const (
	CodeUnreachable    = "unreachable"     // statement can never execute
	CodeMissingReturn  = "missing-return"  // typed function can complete without a value
	CodeUseUnassigned  = "use-unassigned"  // variable may be read before assignment
	CodeUnused         = "unused"          // variable or function never read
	CodeNotCallable    = "not-callable"    // call target is never a function
	CodeScalarIndex    = "scalar-index"    // indexing a number/boolean/null
	CodeArity          = "arity"           // argument count/keys mismatch a declared function
	CodeBuiltinArity   = "builtin-arity"   // argument count mismatches a builtin
	CodeNonTermination = "non-termination" // loop provably never exits normally
)

// Diagnostic is one analyzer finding, positioned in the source.
type Diagnostic struct {
	Pos  minilang.Pos
	Sev  Severity
	Code string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Sev, d.Code, d.Msg)
}

// Errors filters diags down to error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// DiagError wraps error-severity diagnostics as an error value for the
// codegen loop and the HTTP install path.
type DiagError struct {
	Diags []Diagnostic // error severity only, position-sorted
}

func (e *DiagError) Error() string {
	msgs := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		msgs[i] = d.String()
	}
	return "static analysis: " + strings.Join(msgs, "; ")
}

// Analyze runs every pass over the program and returns the findings
// sorted by position (warnings included).
func Analyze(prog *minilang.Program) []Diagnostic {
	a := &analyzer{}

	// Function-level passes: the top level is analyzed as a pseudo
	// function with no declared return type, then every function
	// declaration and literal gets its own CFG.
	a.flowUnit(prog.Stmts, nil)
	walkFuncs(prog, func(fd *minilang.FuncDecl, body *minilang.BlockStmt) {
		a.flowUnit(body.Stmts, fd)
	})

	// Whole-program passes.
	sh := newShapeAnalysis(prog)
	sh.report(a)
	a.loops(prog)

	sort.SliceStable(a.diags, func(i, j int) bool {
		pi, pj := a.diags[i].Pos, a.diags[j].Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return a.diags
}

// Verify runs Analyze and converts error-severity findings into a
// *DiagError (nil when the program passes).
func Verify(prog *minilang.Program) error {
	errs := Errors(Analyze(prog))
	if len(errs) == 0 {
		return nil
	}
	return &DiagError{Diags: errs}
}

type analyzer struct {
	diags []Diagnostic
}

func (a *analyzer) add(pos minilang.Pos, sev Severity, code, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{Pos: pos, Sev: sev, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Constant truthiness

// constTruthy evaluates an expression's truthiness when it is decidable
// statically: literals and the boolean operators over them.
func constTruthy(e minilang.Expr) (truthy, known bool) {
	switch x := e.(type) {
	case *minilang.BoolLit:
		return x.Value, true
	case *minilang.NumberLit:
		return x.Value != 0, true
	case *minilang.StringLit:
		return x.Value != "", true
	case *minilang.NullLit:
		return false, true
	case *minilang.UnaryExpr:
		if x.Op == "!" {
			t, k := constTruthy(x.X)
			return !t, k
		}
	case *minilang.BinaryExpr:
		switch x.Op {
		case "||":
			if t, k := constTruthy(x.L); k {
				if t {
					return true, true
				}
				return constTruthy(x.R)
			}
		case "&&":
			if t, k := constTruthy(x.L); k {
				if !t {
					return false, true
				}
				return constTruthy(x.R)
			}
		}
	}
	return false, false
}
