package analysis

import "repro/internal/minilang"

// walk visits n and all of its children in source order. f returning
// false prunes the subtree below the current node.
func walk(n minilang.Node, f func(minilang.Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *minilang.Program:
		for _, s := range x.Stmts {
			walk(s, f)
		}
	case *minilang.BlockStmt:
		for _, s := range x.Stmts {
			walk(s, f)
		}
	case *minilang.FuncDecl:
		walk(x.Body, f)
	case *minilang.VarDecl:
		if x.Init != nil {
			walk(x.Init, f)
		}
	case *minilang.AssignStmt:
		walk(x.Target, f)
		walk(x.Value, f)
	case *minilang.IncDecStmt:
		walk(x.Target, f)
	case *minilang.ExprStmt:
		walk(x.X, f)
	case *minilang.IfStmt:
		walk(x.Cond, f)
		walk(x.Then, f)
		if x.Else != nil {
			walk(x.Else, f)
		}
	case *minilang.WhileStmt:
		walk(x.Cond, f)
		walk(x.Body, f)
	case *minilang.ForStmt:
		if x.Init != nil {
			walk(x.Init, f)
		}
		if x.Cond != nil {
			walk(x.Cond, f)
		}
		if x.Post != nil {
			walk(x.Post, f)
		}
		walk(x.Body, f)
	case *minilang.ForOfStmt:
		walk(x.Seq, f)
		walk(x.Body, f)
	case *minilang.ReturnStmt:
		if x.Value != nil {
			walk(x.Value, f)
		}
	case *minilang.ThrowStmt:
		walk(x.Value, f)
	case *minilang.ArrayLit:
		for _, e := range x.Elems {
			walk(e, f)
		}
	case *minilang.ObjectLit:
		for _, fl := range x.Fields {
			if fl.Value != nil {
				walk(fl.Value, f)
			}
		}
	case *minilang.TemplateLit:
		for _, e := range x.Exprs {
			walk(e, f)
		}
	case *minilang.UnaryExpr:
		walk(x.X, f)
	case *minilang.BinaryExpr:
		walk(x.L, f)
		walk(x.R, f)
	case *minilang.CondExpr:
		walk(x.Cond, f)
		walk(x.Then, f)
		walk(x.Else, f)
	case *minilang.MemberExpr:
		walk(x.X, f)
	case *minilang.IndexExpr:
		walk(x.X, f)
		walk(x.Index, f)
	case *minilang.CallExpr:
		walk(x.Fn, f)
		for _, a := range x.Args {
			walk(a, f)
		}
	case *minilang.NewExpr:
		for _, a := range x.Args {
			walk(a, f)
		}
	case *minilang.ArrowFunc:
		if x.Expr != nil {
			walk(x.Expr, f)
		}
		if x.Body != nil {
			walk(x.Body, f)
		}
	case *minilang.FuncLit:
		walk(x.Body, f)
	}
}

// walkFuncs calls f once per function-like node with a statement body:
// function declarations (fd non-nil) and arrow/function literals with
// block bodies (fd nil).
func walkFuncs(prog *minilang.Program, f func(fd *minilang.FuncDecl, body *minilang.BlockStmt)) {
	walk(prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.FuncDecl:
			f(x, x.Body)
		case *minilang.ArrowFunc:
			if x.Body != nil {
				f(nil, x.Body)
			}
		case *minilang.FuncLit:
			f(nil, x.Body)
		}
		return true
	})
}

// isFuncNode reports whether n introduces a new function scope.
func isFuncNode(n minilang.Node) bool {
	switch n.(type) {
	case *minilang.FuncDecl, *minilang.ArrowFunc, *minilang.FuncLit:
		return true
	}
	return false
}

// exprReads reports every identifier the expression reads, including
// object-literal shorthand properties ({x} reads x), excluding the
// bodies of nested function literals (those run later, if at all).
func exprReads(e minilang.Expr, f func(name string, pos minilang.Pos)) {
	if e == nil {
		return
	}
	walk(e, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.ArrowFunc, *minilang.FuncLit:
			return false
		case *minilang.Ident:
			f(x.Name, x.P)
		case *minilang.ObjectLit:
			for _, fl := range x.Fields {
				if fl.Value == nil {
					f(fl.Key, x.P)
				}
			}
		}
		return true
	})
}
