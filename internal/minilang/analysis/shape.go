package analysis

import (
	"sort"
	"strings"

	"repro/internal/minilang"
	"repro/internal/types"
)

// The flow-insensitive type/shape lattice. Every variable's shape is
// the join of everything ever assigned to it, anywhere in the program
// (name-joined across scopes — shadowing widens, which only ever
// suppresses findings, never invents them). Checks fire only when a
// shape is fully known and excludes the required capability, so a
// single `any` contribution silences the variable.

type shape uint16

const (
	shNum shape = 1 << iota
	shStr
	shBool
	shArr
	shObj
	shFunc
	shNull

	shAll = shNum | shStr | shBool | shArr | shObj | shFunc | shNull
	// shIndexable are the shapes the runtime indexes successfully:
	// arrays, objects (property access) and strings (chars).
	shIndexable = shArr | shObj | shStr | shFunc
)

var shapeNames = []struct {
	bit  shape
	name string
}{
	{shNum, "number"}, {shStr, "string"}, {shBool, "boolean"},
	{shArr, "array"}, {shObj, "object"}, {shFunc, "function"}, {shNull, "null"},
}

func (s shape) String() string {
	if s == shAll {
		return "any"
	}
	var parts []string
	for _, sn := range shapeNames {
		if s&sn.bit != 0 {
			parts = append(parts, sn.name)
		}
	}
	if len(parts) == 0 {
		return "never"
	}
	return strings.Join(parts, "|")
}

// typeShape maps a declared AskIt type to its runtime shape.
func typeShape(t types.Type) shape {
	if t == nil {
		return shAll
	}
	switch t.Kind() {
	case types.KindInt, types.KindFloat:
		return shNum
	case types.KindStr:
		return shStr
	case types.KindBool:
		return shBool
	case types.KindList:
		return shArr
	case types.KindDict:
		return shObj
	case types.KindLiteral:
		// Literal types validate exactly one value; probe its class.
		switch {
		case t.Validate(true) == nil || t.Validate(false) == nil:
			return shBool
		case t.Validate("") == nil:
			return shStr | shNum // unknown literal payload: stay wide
		default:
			return shNum | shStr | shBool
		}
	default: // unions, any, void
		return shAll
	}
}

// builtinShapes are the shapes of the ambient globals (only consulted
// for names with no user declaration anywhere in the program).
var builtinShapes = map[string]shape{
	"Math": shObj, "JSON": shObj, "console": shObj,
	"Object": shObj | shFunc, "Array": shObj | shFunc,
	"Number": shObj | shFunc, "String": shObj | shFunc, "Boolean": shObj | shFunc,
	"parseInt": shFunc, "parseFloat": shFunc, "isNaN": shFunc, "isFinite": shFunc,
	"appendFile": shFunc, "readFile": shFunc, "writeFile": shFunc,
	"Infinity": shNum, "NaN": shNum,
	"Set": shFunc | shObj, "Map": shFunc | shObj, "Error": shFunc | shObj,
}

// arityRange bounds a builtin's accepted argument count. Calling below
// min yields NaN/undefined (or a runtime error) — never what generated
// code means — so it rejects; extra arguments are ignored and only warn.
type arityRange struct{ min, max int }

var builtinFuncArity = map[string]arityRange{
	"parseInt": {1, 2}, "parseFloat": {1, 1},
	"isNaN": {1, 1}, "isFinite": {1, 1},
	"Number": {0, 1}, "String": {0, 1}, "Boolean": {0, 1},
}

// builtinMemberArity covers calls through builtin namespace objects.
// Only members the runtime actually installs are listed; calling any
// other member of these namespaces is a runtime error, so it rejects.
var builtinMemberArity = map[string]map[string]arityRange{
	"Math": {
		"floor": {1, 1}, "ceil": {1, 1}, "round": {1, 1}, "trunc": {1, 1},
		"abs": {1, 1}, "sqrt": {1, 1}, "cbrt": {1, 1},
		"log": {1, 1}, "log2": {1, 1}, "log10": {1, 1}, "exp": {1, 1},
		"sign": {1, 1}, "pow": {2, 2},
		"max": {0, -1}, "min": {0, -1}, "hypot": {0, -1},
	},
	"JSON": {
		"parse": {1, 2}, "stringify": {1, 3},
	},
}

// mathConstants are non-callable Math members; Math.PI(...) rejects.
var mathConstants = map[string]bool{"PI": true, "E": true}

type varInfo struct {
	shape    shape
	decls    int
	assigned bool // assigned outside its declaration
	reads    int
	declPos  minilang.Pos
	kind     string // "var", "func", "param", "forof"
	fd       *minilang.FuncDecl
	exported bool
}

type shapeAnalysis struct {
	prog *minilang.Program
	vars map[string]*varInfo
}

func newShapeAnalysis(prog *minilang.Program) *shapeAnalysis {
	sh := &shapeAnalysis{prog: prog, vars: map[string]*varInfo{}}
	sh.collect()
	sh.relax()
	return sh
}

func (sh *shapeAnalysis) info(name string) *varInfo {
	vi := sh.vars[name]
	if vi == nil {
		vi = &varInfo{}
		sh.vars[name] = vi
	}
	return vi
}

// collect records every declaration, assignment target and read in one
// structural pass (shapes are joined later, once declarations exist).
func (sh *shapeAnalysis) collect() {
	walk(sh.prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.FuncDecl:
			vi := sh.info(x.Name)
			vi.decls++
			vi.shape |= shFunc
			if vi.decls == 1 {
				vi.kind, vi.fd, vi.declPos = "func", x, x.P
			} else {
				vi.fd = nil
			}
			vi.exported = vi.exported || x.Exported
			sh.declParams(x.Params)
		case *minilang.ArrowFunc:
			sh.declParamsWide(x.Params)
		case *minilang.FuncLit:
			sh.declParamsWide(x.Params)
		case *minilang.VarDecl:
			vi := sh.info(x.Name)
			vi.decls++
			if vi.kind == "" {
				vi.kind, vi.declPos = "var", x.P
			}
			vi.fd = nil
		case *minilang.ForOfStmt:
			vi := sh.info(x.Name)
			vi.decls++
			if vi.kind == "" {
				vi.kind, vi.declPos = "forof", x.P
			}
			vi.fd = nil
		case *minilang.AssignStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				vi := sh.info(id.Name)
				vi.assigned = true
				vi.fd = nil
			}
		case *minilang.IncDecStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				vi := sh.info(id.Name)
				vi.assigned = true
				vi.fd = nil
			}
		}
		return true
	})
	sh.countReads()
}

func (sh *shapeAnalysis) declParams(ps []minilang.Param) {
	for _, p := range ps {
		vi := sh.info(p.Name)
		vi.decls++
		if vi.kind == "" {
			vi.kind, vi.declPos = "param", p.Pos
		}
		vi.fd = nil
		vi.shape |= typeShape(p.Type)
	}
}

func (sh *shapeAnalysis) declParamsWide(ps []minilang.Param) {
	for _, p := range ps {
		vi := sh.info(p.Name)
		vi.decls++
		if vi.kind == "" {
			vi.kind, vi.declPos = "param", p.Pos
		}
		vi.fd = nil
		vi.shape = shAll // untyped literal parameters: unknown
	}
}

// countReads tallies identifier reads (excluding pure write targets) so
// the unused pass knows what was never consumed.
func (sh *shapeAnalysis) countReads() {
	read := func(name string) {
		if vi, ok := sh.vars[name]; ok {
			vi.reads++
		}
	}
	walk(sh.prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.Ident:
			read(x.Name)
		case *minilang.ObjectLit:
			for _, fl := range x.Fields {
				if fl.Value == nil {
					read(fl.Key)
				}
			}
		case *minilang.AssignStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				if x.Op != "=" {
					read(id.Name)
				}
				walk(x.Value, func(m minilang.Node) bool { return sh.readsVisit(m, read) })
				return false
			}
		case *minilang.IncDecStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				read(id.Name)
				return false
			}
		}
		return true
	})
}

func (sh *shapeAnalysis) readsVisit(n minilang.Node, read func(string)) bool {
	switch x := n.(type) {
	case *minilang.Ident:
		read(x.Name)
	case *minilang.ObjectLit:
		for _, fl := range x.Fields {
			if fl.Value == nil {
				read(fl.Key)
			}
		}
	}
	return true
}

// relax joins assignment shapes to a fixpoint. Joins are monotone over
// a finite lattice, so the loop terminates; the cap is a safety net.
func (sh *shapeAnalysis) relax() {
	for i := 0; i < 8; i++ {
		if !sh.relaxOnce() {
			return
		}
	}
}

func (sh *shapeAnalysis) relaxOnce() (changed bool) {
	join := func(name string, s shape) {
		vi := sh.info(name)
		if vi.shape|s != vi.shape {
			vi.shape |= s
			changed = true
		}
	}
	walk(sh.prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.VarDecl:
			if x.Init != nil {
				join(x.Name, sh.exprShape(x.Init))
			} else {
				join(x.Name, shNull) // uninitialized reads yield undefined
			}
		case *minilang.AssignStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				switch x.Op {
				case "=":
					join(id.Name, sh.exprShape(x.Value))
				case "+=":
					join(id.Name, shNum|shStr)
				default:
					join(id.Name, shNum)
				}
			}
		case *minilang.IncDecStmt:
			if id, ok := x.Target.(*minilang.Ident); ok {
				join(id.Name, shNum)
			}
		case *minilang.ForOfStmt:
			if x.In {
				join(x.Name, shStr) // for..in iterates keys/indices as strings
			} else if sh.exprShape(x.Seq)&^shStr == 0 {
				join(x.Name, shStr) // iterating a string yields characters
			} else {
				join(x.Name, shAll)
			}
		}
		return true
	})
	return changed
}

// exprShape evaluates the shape of an expression under the current
// variable solution. Unknown constructs are shAll (no findings).
func (sh *shapeAnalysis) exprShape(e minilang.Expr) shape {
	switch x := e.(type) {
	case *minilang.NumberLit:
		return shNum
	case *minilang.StringLit:
		return shStr
	case *minilang.BoolLit:
		return shBool
	case *minilang.NullLit:
		return shNull
	case *minilang.ArrayLit:
		return shArr
	case *minilang.ObjectLit:
		return shObj
	case *minilang.TemplateLit:
		return shStr
	case *minilang.ArrowFunc, *minilang.FuncLit:
		return shFunc
	case *minilang.Ident:
		return sh.identShape(x.Name)
	case *minilang.UnaryExpr:
		switch x.Op {
		case "!":
			return shBool
		case "-", "+":
			return shNum
		case "typeof":
			return shStr
		}
		return shAll
	case *minilang.BinaryExpr:
		switch x.Op {
		case "+":
			return shNum | shStr
		case "-", "*", "/", "%", "**":
			return shNum
		case "<", "<=", ">", ">=", "==", "!=", "===", "!==":
			return shBool
		case "&&", "||", "??":
			// JS logical operators return one of their operands.
			return sh.exprShape(x.L) | sh.exprShape(x.R)
		}
		return shAll
	case *minilang.CondExpr:
		return sh.exprShape(x.Then) | sh.exprShape(x.Else)
	}
	// Member/index/call/new results are not modeled.
	return shAll
}

func (sh *shapeAnalysis) identShape(name string) shape {
	if vi, ok := sh.vars[name]; ok {
		return vi.shape
	}
	if s, ok := builtinShapes[name]; ok {
		return s
	}
	return shAll
}

// declared reports whether the name has any user declaration (in which
// case it shadows — or at least might shadow — the builtin).
func (sh *shapeAnalysis) declared(name string) bool {
	vi, ok := sh.vars[name]
	return ok && vi.decls > 0
}

// report runs the checks that depend on the shape solution.
func (sh *shapeAnalysis) report(a *analyzer) {
	walk(sh.prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.CallExpr:
			sh.checkCall(a, x)
		case *minilang.IndexExpr:
			if s := sh.exprShape(x.X); s != 0 && s&shIndexable == 0 {
				a.add(x.P, SevError, CodeScalarIndex,
					"cannot index this value: it is always %s", s)
			}
		}
		return true
	})
	sh.reportUnused(a)
}

func (sh *shapeAnalysis) checkCall(a *analyzer, call *minilang.CallExpr) {
	spread := false
	for _, s := range call.Spreads {
		spread = spread || s
	}
	switch fn := call.Fn.(type) {
	case *minilang.Ident:
		s := sh.identShape(fn.Name)
		if s != 0 && s&shFunc == 0 {
			a.add(fn.P, SevError, CodeNotCallable,
				"%q is not callable: it is always %s", fn.Name, s)
			return
		}
		if vi, ok := sh.vars[fn.Name]; ok {
			if vi.fd != nil && !vi.assigned && !spread {
				sh.checkDeclArity(a, call, vi.fd)
			}
			return // user-declared name: builtin tables do not apply
		}
		if ar, ok := builtinFuncArity[fn.Name]; ok && !spread {
			sh.checkArityRange(a, call.P, fn.Name, len(call.Args), ar)
		}
	case *minilang.MemberExpr:
		obj, ok := fn.X.(*minilang.Ident)
		if !ok || sh.declared(obj.Name) {
			return
		}
		members, known := builtinMemberArity[obj.Name]
		if !known {
			return
		}
		ar, ok := members[fn.Name]
		if !ok {
			if obj.Name == "Math" && mathConstants[fn.Name] {
				a.add(fn.P, SevError, CodeNotCallable,
					"Math.%s is a constant, not a function", fn.Name)
			} else {
				a.add(fn.P, SevError, CodeNotCallable,
					"%s.%s is not a function the runtime provides", obj.Name, fn.Name)
			}
			return
		}
		if !spread {
			sh.checkArityRange(a, call.P, obj.Name+"."+fn.Name, len(call.Args), ar)
		}
	}
}

func (sh *shapeAnalysis) checkArityRange(a *analyzer, pos minilang.Pos, name string, got int, ar arityRange) {
	if got < ar.min {
		a.add(pos, SevError, CodeBuiltinArity,
			"%s requires at least %d argument(s), got %d", name, ar.min, got)
	} else if ar.max >= 0 && got > ar.max {
		a.add(pos, SevWarn, CodeBuiltinArity,
			"%s takes at most %d argument(s), got %d (extras are ignored)", name, ar.max, got)
	}
}

// checkDeclArity validates a call against a uniquely-declared,
// never-reassigned function declaration.
func (sh *shapeAnalysis) checkDeclArity(a *analyzer, call *minilang.CallExpr, fd *minilang.FuncDecl) {
	if fd.Named {
		// AskIt named-parameter convention: exactly one object argument
		// carrying every declared key (the runtime errors on missing
		// keys).
		if len(call.Args) != 1 {
			a.add(call.P, SevError, CodeArity,
				"function %q takes a single named-argument object {%s}, got %d arguments",
				fd.Name, paramNames(fd.Params), len(call.Args))
			return
		}
		ol, ok := call.Args[0].(*minilang.ObjectLit)
		if !ok {
			return // dynamic object: cannot check keys
		}
		have := map[string]bool{}
		for _, fl := range ol.Fields {
			have[fl.Key] = true
		}
		for _, p := range fd.Params {
			if !have[p.Name] {
				a.add(call.P, SevError, CodeArity,
					"call to %q is missing named argument %q", fd.Name, p.Name)
			}
		}
		return
	}
	if len(call.Args) < len(fd.Params) {
		a.add(call.P, SevError, CodeArity,
			"function %q takes %d argument(s), got %d", fd.Name, len(fd.Params), len(call.Args))
	} else if len(call.Args) > len(fd.Params) {
		a.add(call.P, SevWarn, CodeArity,
			"function %q takes %d argument(s), got %d (extras are ignored)", fd.Name, len(fd.Params), len(call.Args))
	}
}

func paramNames(ps []minilang.Param) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// reportUnused warns about declarations nothing ever reads. Parameters
// are exempt (generated signatures are fixed by the spec), as is the
// exported entry function.
func (sh *shapeAnalysis) reportUnused(a *analyzer) {
	names := make([]string, 0, len(sh.vars))
	for name := range sh.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vi := sh.vars[name]
		if vi.decls == 0 || vi.reads > 0 || vi.exported || vi.kind == "param" {
			continue
		}
		noun := "variable"
		if vi.kind == "func" {
			noun = "function"
		}
		a.add(vi.declPos, SevWarn, CodeUnused, "%s %q is declared but never used", noun, name)
	}
}
