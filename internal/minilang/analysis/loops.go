package analysis

import (
	"sort"
	"strings"

	"repro/internal/minilang"
)

// Non-termination heuristics. Two tiers, calibrated against the
// runtime:
//
//   - A loop whose condition is a compile-time-true constant and whose
//     body contains no break (for this loop) and no return can only
//     ever exit the function abnormally (throw, fuel exhaustion), so
//     it is an error: the generated code burns the whole step budget
//     per example before failing.
//   - A loop whose condition reads only named variables that nothing in
//     the body can modify spins forever *if entered* — but a false
//     condition on entry is a clean no-op, so this tier only warns.
//     Execution is single-threaded, so when the body performs no calls
//     at all (which could reach a mutating closure), direct
//     assignments in the body/post are the only mutation channel.
func (a *analyzer) loops(prog *minilang.Program) {
	walk(prog, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.WhileStmt:
			a.checkLoop(x.P, x.Cond, x.Body, nil)
		case *minilang.ForStmt:
			a.checkLoop(x.P, x.Cond, x.Body, x.Post)
		}
		return true
	})
}

func (a *analyzer) checkLoop(pos minilang.Pos, cond minilang.Expr, body, post minilang.Stmt) {
	hasBreak, hasReturn := loopExits(body)
	alwaysTrue := cond == nil
	if cond != nil {
		t, known := constTruthy(cond)
		alwaysTrue = known && t
	}
	if alwaysTrue {
		if !hasBreak && !hasReturn {
			a.add(pos, SevError, CodeNonTermination,
				"loop condition is always true and the body never breaks or returns")
		}
		return
	}
	if hasBreak || hasReturn {
		return
	}
	vars, simple := condVars(cond)
	if !simple || len(vars) == 0 {
		return
	}
	if hasCalls(body) || (post != nil && hasCalls(post)) {
		return // a call may reach a closure that mutates a condition variable
	}
	for _, v := range vars {
		if assignsName(body, v) || (post != nil && assignsName(post, v)) {
			return
		}
	}
	a.add(pos, SevWarn, CodeNonTermination,
		"loop may never terminate: condition variable(s) %s are never modified in the loop body",
		strings.Join(vars, ", "))
}

// loopExits scans a loop body for a break binding to this loop and for
// any return, skipping nested function literals.
func loopExits(body minilang.Stmt) (hasBreak, hasReturn bool) {
	var scan func(s minilang.Node, depth int)
	scan = func(s minilang.Node, depth int) {
		walk(s, func(n minilang.Node) bool {
			if n != s {
				switch n.(type) {
				case *minilang.WhileStmt, *minilang.ForStmt, *minilang.ForOfStmt:
					scan(n, depth+1)
					return false
				case *minilang.ArrowFunc, *minilang.FuncLit, *minilang.FuncDecl:
					return false
				}
			}
			switch n.(type) {
			case *minilang.BreakStmt:
				if depth == 0 {
					hasBreak = true
				}
			case *minilang.ReturnStmt:
				hasReturn = true
			}
			return true
		})
	}
	scan(body, 0)
	return hasBreak, hasReturn
}

// condVars extracts the identifiers a loop condition reads. simple is
// false when the condition involves calls, members or indexing —
// anything whose value can change without an assignment to a named
// variable.
func condVars(cond minilang.Expr) (vars []string, simple bool) {
	simple = true
	seen := map[string]bool{}
	walk(cond, func(n minilang.Node) bool {
		switch x := n.(type) {
		case *minilang.CallExpr, *minilang.NewExpr, *minilang.MemberExpr,
			*minilang.IndexExpr, *minilang.ArrowFunc, *minilang.FuncLit:
			simple = false
			return false
		case *minilang.Ident:
			if !isAmbientGlobal(x.Name) && !seen[x.Name] {
				seen[x.Name] = true
				vars = append(vars, x.Name)
			}
		}
		return true
	})
	sort.Strings(vars)
	return vars, simple
}

// isAmbientGlobal reports engine-provided globals, whose value never
// changes (so they impose no mutation requirement on the loop).
func isAmbientGlobal(name string) bool {
	_, ok := builtinShapes[name]
	return ok
}

// hasCalls reports whether executing n can perform any call. Function
// literals defined (but not called) inside n never run while the loop
// spins, so their bodies are skipped.
func hasCalls(n minilang.Node) bool {
	found := false
	walk(n, func(m minilang.Node) bool {
		switch m.(type) {
		case *minilang.CallExpr, *minilang.NewExpr:
			found = true
		case *minilang.ArrowFunc, *minilang.FuncLit, *minilang.FuncDecl:
			return false
		}
		return !found
	})
	return found
}

// assignsName reports whether any assignment or increment targeting the
// plain variable occurs under n. Nested function bodies are included:
// counting them is conservative (it can only suppress a warning).
func assignsName(n minilang.Node, name string) bool {
	found := false
	walk(n, func(m minilang.Node) bool {
		switch x := m.(type) {
		case *minilang.AssignStmt:
			if id, ok := x.Target.(*minilang.Ident); ok && id.Name == name {
				found = true
			}
		case *minilang.IncDecStmt:
			if id, ok := x.Target.(*minilang.Ident); ok && id.Name == name {
				found = true
			}
		case *minilang.ForOfStmt:
			if x.Name == name {
				found = true // loop binding rebinds the name per iteration
			}
		case *minilang.VarDecl:
			if x.Name == name {
				found = true // shadowing declaration: stop reasoning
			}
		}
		return !found
	})
	return found
}
