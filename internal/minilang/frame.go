package minilang

import "sync"

// The compiled engine replaces the map-based Env with slice-backed
// frames. Every lexical scope that declares at least one name is lowered
// to a frame whose size is known at compile time; identifier access
// becomes a (depth, slot) walk instead of a map lookup chain.
//
// Frames for scopes that provably do not escape (no closure is created
// anywhere inside them) are recycled through a sync.Pool, so a
// steady-state Call() of straight-line generated code performs no
// environment allocation at all.

// unbound marks a slot whose declaration has not executed yet. It plays
// the role of "name not present in Env": reads fall through to outer
// candidates (or fail with "undefined variable"), and a VarDecl hitting
// a bound slot reports the same duplicate-declaration error Env.Define
// does.
type unboundMarker struct{}

var unbound any = unboundMarker{}

// scopeInfo is the compile-time description of one materialized scope.
type scopeInfo struct {
	nslots  int
	escapes bool // a closure may capture this frame; do not pool it
}

// frame is one activation of a scope: a fixed-size slot array plus the
// lexical parent chain and the per-call interpreter state (fuel budget,
// stdout) shared by all frames of the call.
type frame struct {
	slots  []any
	parent *frame
	in     *Interp
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

func newFrame(sc *scopeInfo, parent *frame, in *Interp) *frame {
	var fr *frame
	if sc.escapes {
		fr = new(frame)
	} else {
		fr = framePool.Get().(*frame)
	}
	if cap(fr.slots) < sc.nslots {
		fr.slots = make([]any, sc.nslots)
	} else {
		fr.slots = fr.slots[:sc.nslots]
	}
	for i := range fr.slots {
		fr.slots[i] = unbound
	}
	fr.parent = parent
	fr.in = in
	return fr
}

// releaseFrame returns a non-escaping frame to the pool. Slots are
// cleared so pooled frames do not retain user values.
func releaseFrame(fr *frame, sc *scopeInfo) {
	if sc.escapes {
		return
	}
	for i := range fr.slots {
		fr.slots[i] = nil
	}
	fr.parent = nil
	fr.in = nil
	framePool.Put(fr)
}

// hop returns the frame depth levels up the parent chain.
func (fr *frame) hop(depth int) *frame {
	for ; depth > 0; depth-- {
		fr = fr.parent
	}
	return fr
}

// ---------------------------------------------------------------------------
// Small-number interning. Boxing a float64 into an interface allocates;
// loop counters and small results dominate generated-code arithmetic, so
// integral values in [0,256] are served from a static table.

var smallNums [257]any

func init() {
	for i := range smallNums {
		smallNums[i] = float64(i)
	}
}

// boxNumber converts f to an interface value, reusing preboxed values
// for small non-negative integers.
func boxNumber(f float64) any {
	if f >= 0 && f <= 256 {
		if i := int(f); float64(i) == f {
			return smallNums[i]
		}
	}
	return f
}
