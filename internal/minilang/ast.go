package minilang

import "repro/internal/types"

// Node is any AST node.
type Node interface {
	NodePos() Pos
}

type base struct{ P Pos }

func (b base) NodePos() Pos { return b.P }

// ---------------------------------------------------------------------------
// Program and declarations

// Program is a parsed minilang source file: a list of statements, usually
// one exported function declaration.
type Program struct {
	base
	Stmts []Stmt
}

// Funcs returns the top-level function declarations by name.
func (p *Program) Funcs() map[string]*FuncDecl {
	out := map[string]*FuncDecl{}
	for _, s := range p.Stmts {
		if fd, ok := s.(*FuncDecl); ok {
			out[fd.Name] = fd
		}
	}
	return out
}

// Param is a named function parameter with an optional type annotation.
type Param struct {
	Name string
	Type types.Type // may be nil when unannotated
	Pos  Pos
}

// FuncDecl is `function name({a, b}: {a: T, b: T}): R { ... }` or
// `function name(a, b) { ... }`. Destructured named-parameter style is
// the form AskIt generates (paper §III-D); positional style is accepted
// for hand-written helpers.
type FuncDecl struct {
	base
	Name       string
	Params     []Param
	Named      bool // true when the parameter list is a destructured object
	ReturnType types.Type
	Body       *BlockStmt
	Exported   bool
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	base
	Stmts []Stmt
}

// VarDecl is `let|const|var name[: T] = init`. Init may be nil for `let x;`.
type VarDecl struct {
	base
	Keyword string // let, const, var
	Name    string
	Type    types.Type // may be nil
	Init    Expr
}

// AssignStmt is `target op value` where op is =, +=, -=, *=, /=, %=.
// Target is an identifier, member or index expression.
type AssignStmt struct {
	base
	Target Expr
	Op     string
	Value  Expr
}

// IncDecStmt is `x++` or `x--` used as a statement.
type IncDecStmt struct {
	base
	Target Expr
	Op     string // "++" or "--"
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	base
	X Expr
}

// IfStmt is `if (cond) then [else else]`.
type IfStmt struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	base
	Cond Expr
	Body Stmt
}

// ForStmt is the classic `for (init; cond; post) body`. Init is a
// *VarDecl, *AssignStmt or nil; Post is a statement or nil.
type ForStmt struct {
	base
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// ForOfStmt is `for (const x of seq) body`. When In is true it is a
// for..in loop (iterating object keys / array indices).
type ForOfStmt struct {
	base
	Keyword string
	Name    string
	Seq     Expr
	Body    Stmt
	In      bool
}

// ReturnStmt is `return [expr]`.
type ReturnStmt struct {
	base
	Value Expr // may be nil
}

// BreakStmt is `break`.
type BreakStmt struct{ base }

// ContinueStmt is `continue`.
type ContinueStmt struct{ base }

// ThrowStmt is `throw expr`. The interpreter turns it into a RuntimeError.
type ThrowStmt struct {
	base
	Value Expr
}

func (*BlockStmt) stmt()    {}
func (*VarDecl) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IncDecStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ForOfStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ThrowStmt) stmt()    {}
func (*FuncDecl) stmt()     {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// NumberLit is a numeric literal.
type NumberLit struct {
	base
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is null or undefined.
type NullLit struct{ base }

// Ident is a variable reference.
type Ident struct {
	base
	Name string
}

// ArrayLit is `[a, b, ...c]`.
type ArrayLit struct {
	base
	Elems   []Expr
	Spreads []bool // parallel to Elems; true when the element is ...spread
}

// ObjectField is one `key: value` (or shorthand `key`) in an object literal.
type ObjectField struct {
	Key   string
	Value Expr // nil for shorthand {x}
}

// ObjectLit is `{ a: 1, b }`.
type ObjectLit struct {
	base
	Fields []ObjectField
}

// TemplateLit is `a ${x} b`: alternating literal chunks and expressions.
// len(Chunks) == len(Exprs)+1.
type TemplateLit struct {
	base
	Chunks []string
	Exprs  []Expr
}

// UnaryExpr is `-x`, `!x`, `+x`, `typeof x`.
type UnaryExpr struct {
	base
	Op string
	X  Expr
}

// BinaryExpr is a binary operation. `==`/`!=` are normalized to strict
// semantics on parse (generated code uses them interchangeably).
type BinaryExpr struct {
	base
	Op   string
	L, R Expr
}

// CondExpr is `cond ? a : b`.
type CondExpr struct {
	base
	Cond Expr
	Then Expr
	Else Expr
}

// MemberExpr is `x.name`.
type MemberExpr struct {
	base
	X    Expr
	Name string
	Opt  bool // optional chaining x?.name
}

// IndexExpr is `x[i]`.
type IndexExpr struct {
	base
	X     Expr
	Index Expr
}

// CallExpr is `f(args...)` or `x.m(args...)`.
type CallExpr struct {
	base
	Fn      Expr
	Args    []Expr
	Spreads []bool // parallel to Args
}

// NewExpr is `new Ctor(args...)`; only a few constructors are supported
// by the runtime (Set, Map, Array, Error, Date).
type NewExpr struct {
	base
	Ctor string
	Args []Expr
}

// ArrowFunc is `(a, b) => expr` or `(a, b) => { ... }`.
type ArrowFunc struct {
	base
	Params []Param
	Expr   Expr       // non-nil for expression bodies
	Body   *BlockStmt // non-nil for block bodies
}

// FuncLit is a `function (a, b) { ... }` expression.
type FuncLit struct {
	base
	Params []Param
	Named  bool
	Body   *BlockStmt
}

func (*NumberLit) expr()   {}
func (*StringLit) expr()   {}
func (*BoolLit) expr()     {}
func (*NullLit) expr()     {}
func (*Ident) expr()       {}
func (*ArrayLit) expr()    {}
func (*ObjectLit) expr()   {}
func (*TemplateLit) expr() {}
func (*UnaryExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*CondExpr) expr()    {}
func (*MemberExpr) expr()  {}
func (*IndexExpr) expr()   {}
func (*CallExpr) expr()    {}
func (*NewExpr) expr()     {}
func (*ArrowFunc) expr()   {}
func (*FuncLit) expr()     {}
