package minilang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a program in canonical style. Generated code is
// stored formatted so that on-disk caches diff cleanly and LOC counting
// (Table II, Figure 5) is stable.
func Format(prog *Program) string {
	p := &printer{}
	for i, s := range prog.Stmts {
		if i > 0 {
			p.nl()
		}
		p.stmt(s)
		p.nl()
	}
	return p.b.String()
}

// FormatFunc pretty-prints a single function declaration.
func FormatFunc(fd *FuncDecl) string {
	p := &printer{}
	p.stmt(fd)
	p.nl()
	return p.b.String()
}

// CountLOC counts substantive lines of code in minilang source: lines
// that are not blank and not comment-only (the Table II metric).
func CountLOC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				t = strings.TrimSpace(t[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if strings.HasPrefix(t, "/*") {
			if !strings.Contains(t, "*/") {
				inBlock = true
				continue
			}
			t = strings.TrimSpace(t[strings.Index(t, "*/")+2:])
		}
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws() { p.b.WriteString(strings.Repeat("  ", p.indent)) }
func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.ws()
		p.block(st)
	case *VarDecl:
		p.ws()
		p.b.WriteString(st.Keyword + " " + st.Name)
		if st.Type != nil {
			p.b.WriteString(": " + st.Type.TS())
		}
		if st.Init != nil {
			p.b.WriteString(" = ")
			p.expr(st.Init, 0)
		}
		p.b.WriteString(";")
	case *AssignStmt:
		p.ws()
		p.expr(st.Target, 0)
		p.b.WriteString(" " + st.Op + " ")
		p.expr(st.Value, 0)
		p.b.WriteString(";")
	case *IncDecStmt:
		p.ws()
		p.expr(st.Target, 0)
		p.b.WriteString(st.Op + ";")
	case *ExprStmt:
		p.ws()
		p.expr(st.X, 0)
		p.b.WriteString(";")
	case *IfStmt:
		p.ws()
		p.ifChain(st)
	case *WhileStmt:
		p.ws()
		p.b.WriteString("while (")
		p.expr(st.Cond, 0)
		p.b.WriteString(") ")
		p.bodyOf(st.Body)
	case *ForStmt:
		p.ws()
		p.b.WriteString("for (")
		if st.Init != nil {
			p.inline(st.Init)
		}
		p.b.WriteString("; ")
		if st.Cond != nil {
			p.expr(st.Cond, 0)
		}
		p.b.WriteString("; ")
		if st.Post != nil {
			p.inline(st.Post)
		}
		p.b.WriteString(") ")
		p.bodyOf(st.Body)
	case *ForOfStmt:
		p.ws()
		kw := "of"
		if st.In {
			kw = "in"
		}
		fmt.Fprintf(&p.b, "for (%s %s %s ", st.Keyword, st.Name, kw)
		p.expr(st.Seq, 0)
		p.b.WriteString(") ")
		p.bodyOf(st.Body)
	case *ReturnStmt:
		p.ws()
		p.b.WriteString("return")
		if st.Value != nil {
			p.b.WriteByte(' ')
			p.expr(st.Value, 0)
		}
		p.b.WriteString(";")
	case *BreakStmt:
		p.ws()
		p.b.WriteString("break;")
	case *ContinueStmt:
		p.ws()
		p.b.WriteString("continue;")
	case *ThrowStmt:
		p.ws()
		p.b.WriteString("throw ")
		p.expr(st.Value, 0)
		p.b.WriteString(";")
	case *FuncDecl:
		p.ws()
		if st.Exported {
			p.b.WriteString("export ")
		}
		p.b.WriteString("function " + st.Name + "(")
		p.params(st.Params, st.Named)
		p.b.WriteString(")")
		if st.ReturnType != nil {
			p.b.WriteString(": " + st.ReturnType.TS())
		}
		p.b.WriteByte(' ')
		p.block(st.Body)
	}
}

// inline prints a simple statement without indentation or trailing
// semicolon (for for-headers).
func (p *printer) inline(s Stmt) {
	saved := p.indent
	p.indent = 0
	var tmp printer
	tmp.stmt(s)
	out := strings.TrimSuffix(strings.TrimSpace(tmp.b.String()), ";")
	p.b.WriteString(out)
	p.indent = saved
}

func (p *printer) ifChain(st *IfStmt) {
	p.b.WriteString("if (")
	p.expr(st.Cond, 0)
	p.b.WriteString(") ")
	p.bodyBraced(st.Then)
	if st.Else == nil {
		return
	}
	p.b.WriteString(" else ")
	if next, ok := st.Else.(*IfStmt); ok {
		p.ifChain(next)
		return
	}
	p.bodyBraced(st.Else)
}

// bodyBraced prints a statement as a braced block (wrapping single
// statements), keeping output canonical.
func (p *printer) bodyBraced(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.block(&BlockStmt{Stmts: []Stmt{s}})
}

func (p *printer) bodyOf(s Stmt) { p.bodyBraced(s) }

func (p *printer) block(b *BlockStmt) {
	if len(b.Stmts) == 0 {
		p.b.WriteString("{}")
		return
	}
	p.b.WriteString("{")
	p.nl()
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
		p.nl()
	}
	p.indent--
	p.ws()
	p.b.WriteString("}")
}

func (p *printer) params(params []Param, named bool) {
	if named {
		p.b.WriteString("{")
		for i, prm := range params {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(prm.Name)
		}
		p.b.WriteString("}: {")
		for i, prm := range params {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(prm.Name + ": ")
			if prm.Type != nil {
				p.b.WriteString(prm.Type.TS())
			} else {
				p.b.WriteString("any")
			}
		}
		p.b.WriteString("}")
		return
	}
	for i, prm := range params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(prm.Name)
		if prm.Type != nil {
			p.b.WriteString(": " + prm.Type.TS())
		}
	}
}

// operator precedence for parenthesization decisions
var precOf = map[string]int{
	"??": 1, "||": 2, "&&": 3,
	"|": 4, "^": 5, "&": 6,
	"==": 7, "!=": 7, "===": 7, "!==": 7,
	"<": 8, "<=": 8, ">": 8, ">=": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
	"**": 11,
}

const unaryPrec = 12

func (p *printer) expr(e Expr, parentPrec int) {
	switch x := e.(type) {
	case *NumberLit:
		p.b.WriteString(formatNum(x.Value))
	case *StringLit:
		p.b.WriteString(quoteJS(x.Value))
	case *BoolLit:
		fmt.Fprintf(&p.b, "%v", x.Value)
	case *NullLit:
		p.b.WriteString("null")
	case *Ident:
		p.b.WriteString(x.Name)
	case *ArrayLit:
		p.b.WriteString("[")
		for i, el := range x.Elems {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if x.Spreads[i] {
				p.b.WriteString("...")
			}
			p.expr(el, 0)
		}
		p.b.WriteString("]")
	case *ObjectLit:
		p.b.WriteString("{ ")
		for i, f := range x.Fields {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(f.Key)
			if f.Value != nil {
				p.b.WriteString(": ")
				p.expr(f.Value, 0)
			}
		}
		p.b.WriteString(" }")
	case *TemplateLit:
		p.b.WriteByte('`')
		for i, chunk := range x.Chunks {
			p.b.WriteString(strings.ReplaceAll(strings.ReplaceAll(chunk, "\\", "\\\\"), "`", "\\`"))
			if i < len(x.Exprs) {
				p.b.WriteString("${")
				p.expr(x.Exprs[i], 0)
				p.b.WriteString("}")
			}
		}
		p.b.WriteByte('`')
	case *UnaryExpr:
		if x.Op == "typeof" {
			p.b.WriteString("typeof ")
		} else {
			p.b.WriteString(x.Op)
		}
		p.expr(x.X, unaryPrec)
	case *BinaryExpr:
		prec := precOf[x.Op]
		if prec < parentPrec {
			p.b.WriteString("(")
		}
		p.expr(x.L, prec)
		p.b.WriteString(" " + x.Op + " ")
		p.expr(x.R, prec+1)
		if prec < parentPrec {
			p.b.WriteString(")")
		}
	case *CondExpr:
		if parentPrec > 0 {
			p.b.WriteString("(")
		}
		p.expr(x.Cond, 1)
		p.b.WriteString(" ? ")
		p.expr(x.Then, 0)
		p.b.WriteString(" : ")
		p.expr(x.Else, 0)
		if parentPrec > 0 {
			p.b.WriteString(")")
		}
	case *MemberExpr:
		p.expr(x.X, unaryPrec)
		if x.Opt {
			p.b.WriteString("?.")
		} else {
			p.b.WriteString(".")
		}
		p.b.WriteString(x.Name)
	case *IndexExpr:
		p.expr(x.X, unaryPrec)
		p.b.WriteString("[")
		p.expr(x.Index, 0)
		p.b.WriteString("]")
	case *CallExpr:
		p.expr(x.Fn, unaryPrec)
		p.b.WriteString("(")
		for i, a := range x.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if i < len(x.Spreads) && x.Spreads[i] {
				p.b.WriteString("...")
			}
			p.expr(a, 0)
		}
		p.b.WriteString(")")
	case *NewExpr:
		p.b.WriteString("new " + x.Ctor + "(")
		for i, a := range x.Args {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.b.WriteString(")")
	case *ArrowFunc:
		p.b.WriteString("(")
		for i, prm := range x.Params {
			if i > 0 {
				p.b.WriteString(", ")
			}
			p.b.WriteString(prm.Name)
		}
		p.b.WriteString(") => ")
		if x.Expr != nil {
			if _, isObj := x.Expr.(*ObjectLit); isObj {
				p.b.WriteString("(")
				p.expr(x.Expr, 0)
				p.b.WriteString(")")
			} else {
				p.expr(x.Expr, 1)
			}
			return
		}
		p.block(x.Body)
	case *FuncLit:
		p.b.WriteString("function (")
		p.params(x.Params, x.Named)
		p.b.WriteString(") ")
		p.block(x.Body)
	}
}

func quoteJS(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
