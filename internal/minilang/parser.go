package minilang

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Parse parses a minilang source file into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{base: base{P: Pos{Line: 1, Col: 1}}}
	for !p.atEOF() {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

// ParseFunction parses a source file expected to contain exactly one
// top-level function declaration named name (the shape the codegen
// prompt requests); it returns that declaration. Extra helper functions
// are allowed; the program is returned for execution context.
func ParseFunction(src, name string) (*Program, *FuncDecl, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	fd := prog.Funcs()[name]
	if fd == nil {
		// Accept a single function under a different name: models
		// occasionally rename. Use it when unambiguous.
		funcs := prog.Funcs()
		if len(funcs) == 1 {
			for _, f := range funcs {
				fd = f
			}
		}
	}
	if fd == nil {
		return nil, nil, &CompileError{Msg: fmt.Sprintf("no function %q in generated code", name)}
	}
	return prog, fd, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.toks[p.i].Kind == EOF }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *parser) is(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *parser) isPunct(text string) bool   { return p.is(PUNCT, text) }
func (p *parser) isKeyword(text string) bool { return p.is(KEYWORD, text) }

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.is(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if p.is(kind, text) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %q, found %s", text, p.cur())
}

func (p *parser) errf(format string, args ...any) error {
	return &CompileError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSemis() {
	for p.accept(PUNCT, ";") {
	}
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) statement() (Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.isKeyword("export"), p.isKeyword("async"):
		exported := p.cur().Text == "export"
		p.next()
		// `export async function`, `async function`
		if p.isKeyword("async") {
			p.next()
		}
		if !p.isKeyword("function") {
			return nil, p.errf("expected 'function' after modifier")
		}
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		fd.Exported = fd.Exported || exported
		return fd, nil
	case p.isKeyword("function"):
		return p.funcDecl()
	case p.isKeyword("let"), p.isKeyword("const"), p.isKeyword("var"):
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return s, nil
	case p.isKeyword("if"):
		return p.ifStmt()
	case p.isKeyword("while"):
		return p.whileStmt()
	case p.isKeyword("do"):
		return p.doWhileStmt()
	case p.isKeyword("for"):
		return p.forStmt()
	case p.isKeyword("return"):
		p.next()
		rs := &ReturnStmt{base: base{pos}}
		if !p.isPunct(";") && !p.isPunct("}") && !p.atEOF() {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		p.skipSemis()
		return rs, nil
	case p.isKeyword("break"):
		p.next()
		p.skipSemis()
		return &BreakStmt{base{pos}}, nil
	case p.isKeyword("continue"):
		p.next()
		p.skipSemis()
		return &ContinueStmt{base{pos}}, nil
	case p.isKeyword("throw"):
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		p.skipSemis()
		return &ThrowStmt{base: base{pos}, Value: v}, nil
	case p.isPunct("{"):
		return p.block()
	case p.isPunct(";"):
		p.next()
		return &BlockStmt{base: base{pos}}, nil
	case p.isKeyword("switch"):
		return nil, p.errf("switch statements are not supported; use if/else")
	default:
		return p.simpleStmt(true)
	}
}

// simpleStmt parses an expression, assignment or inc/dec statement.
// consumeSemis controls trailing-semicolon handling (off inside for headers).
func (p *parser) simpleStmt(consumeSemis bool) (Stmt, error) {
	pos := p.cur().Pos
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	var st Stmt
	switch {
	case p.isPunct("=") || p.isPunct("+=") || p.isPunct("-=") || p.isPunct("*=") || p.isPunct("/=") || p.isPunct("%="):
		op := p.next().Text
		if !isAssignable(x) {
			return nil, &CompileError{Pos: x.NodePos(), Msg: "invalid assignment target"}
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		st = &AssignStmt{base: base{pos}, Target: x, Op: op, Value: v}
	case p.isPunct("++") || p.isPunct("--"):
		op := p.next().Text
		if !isAssignable(x) {
			return nil, &CompileError{Pos: x.NodePos(), Msg: "invalid increment target"}
		}
		st = &IncDecStmt{base: base{pos}, Target: x, Op: op}
	default:
		st = &ExprStmt{base: base{pos}, X: x}
	}
	if consumeSemis {
		p.skipSemis()
	}
	return st, nil
}

func isAssignable(e Expr) bool {
	switch e.(type) {
	case *Ident, *MemberExpr, *IndexExpr:
		return true
	}
	return false
}

func (p *parser) block() (*BlockStmt, error) {
	pos := p.cur().Pos
	if _, err := p.expect(PUNCT, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{base: base{pos}}
	for !p.isPunct("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) varDecl() (Stmt, error) {
	pos := p.cur().Pos
	kw := p.next().Text
	nameTok := p.next()
	if nameTok.Kind != IDENT {
		return nil, &CompileError{Pos: nameTok.Pos, Msg: fmt.Sprintf("expected variable name, found %s", nameTok)}
	}
	vd := &VarDecl{base: base{pos}, Keyword: kw, Name: nameTok.Text}
	if p.accept(PUNCT, ":") {
		t, err := p.typeAnn()
		if err != nil {
			return nil, err
		}
		vd.Type = t
	}
	if p.accept(PUNCT, "=") {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	} else if kw == "const" {
		return nil, p.errf("const declaration requires an initializer")
	}
	return vd, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(PUNCT, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(PUNCT, ")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{base: base{pos}, Cond: cond, Then: then}
	if p.accept(KEYWORD, "else") {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(PUNCT, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(PUNCT, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base: base{pos}, Cond: cond, Body: body}, nil
}

// doWhileStmt desugars `do body while (cond)` into body + while loop with
// the body duplicated — adequate for generated code, which uses do-while
// rarely; semantics match when the body has no continue.
func (p *parser) doWhileStmt() (Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KEYWORD, "while"); err != nil {
		return nil, err
	}
	if _, err := p.expect(PUNCT, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(PUNCT, ")"); err != nil {
		return nil, err
	}
	p.skipSemis()
	return &BlockStmt{base: base{pos}, Stmts: []Stmt{
		body,
		&WhileStmt{base: base{pos}, Cond: cond, Body: body},
	}}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(PUNCT, "("); err != nil {
		return nil, err
	}
	// for ( [let|const|var] x of|in seq )
	if p.isKeyword("let") || p.isKeyword("const") || p.isKeyword("var") {
		save := p.i
		kw := p.next().Text
		if p.cur().Kind == IDENT {
			name := p.next().Text
			if p.isKeyword("of") || p.isKeyword("in") {
				isIn := p.next().Text == "in"
				seq, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(PUNCT, ")"); err != nil {
					return nil, err
				}
				body, err := p.statement()
				if err != nil {
					return nil, err
				}
				return &ForOfStmt{base: base{pos}, Keyword: kw, Name: name, Seq: seq, Body: body, In: isIn}, nil
			}
		}
		p.i = save
	}
	st := &ForStmt{base: base{pos}}
	if !p.isPunct(";") {
		var init Stmt
		var err error
		if p.isKeyword("let") || p.isKeyword("const") || p.isKeyword("var") {
			init, err = p.varDecl()
		} else {
			init, err = p.simpleStmt(false)
		}
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(PUNCT, ";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(PUNCT, ";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(PUNCT, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.next().Pos // function
	nameTok := p.next()
	if nameTok.Kind != IDENT {
		return nil, &CompileError{Pos: nameTok.Pos, Msg: fmt.Sprintf("expected function name, found %s", nameTok)}
	}
	fd := &FuncDecl{base: base{pos}, Name: nameTok.Text}
	params, named, err := p.paramList()
	if err != nil {
		return nil, err
	}
	fd.Params, fd.Named = params, named
	if p.accept(PUNCT, ":") {
		rt, err := p.typeAnn()
		if err != nil {
			return nil, err
		}
		fd.ReturnType = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// paramList parses either positional `(a: T, b: T)` or the destructured
// named form `({a, b}: {a: T, b: T})` the codegen prompt mandates.
func (p *parser) paramList() ([]Param, bool, error) {
	if _, err := p.expect(PUNCT, "("); err != nil {
		return nil, false, err
	}
	if p.accept(PUNCT, ")") {
		return nil, false, nil
	}
	if p.isPunct("{") {
		// Destructured named parameters.
		p.next()
		var params []Param
		for !p.isPunct("}") {
			t := p.next()
			if t.Kind != IDENT {
				return nil, false, &CompileError{Pos: t.Pos, Msg: fmt.Sprintf("expected parameter name, found %s", t)}
			}
			params = append(params, Param{Name: t.Text, Pos: t.Pos})
			if p.accept(PUNCT, ",") {
				if p.isPunct("}") {
					break
				}
				continue
			}
			break
		}
		if _, err := p.expect(PUNCT, "}"); err != nil {
			return nil, false, err
		}
		if p.accept(PUNCT, ":") {
			t, err := p.typeAnn()
			if err != nil {
				return nil, false, err
			}
			if d, ok := t.(interface{ Fields() []types.Field }); ok {
				byName := map[string]types.Type{}
				for _, f := range d.Fields() {
					byName[f.Name] = f.Type
				}
				for i := range params {
					params[i].Type = byName[params[i].Name]
				}
			}
		}
		if _, err := p.expect(PUNCT, ")"); err != nil {
			return nil, false, err
		}
		return params, true, nil
	}
	var params []Param
	for {
		t := p.next()
		if t.Kind != IDENT {
			return nil, false, &CompileError{Pos: t.Pos, Msg: fmt.Sprintf("expected parameter name, found %s", t)}
		}
		prm := Param{Name: t.Text, Pos: t.Pos}
		if p.accept(PUNCT, ":") {
			ty, err := p.typeAnn()
			if err != nil {
				return nil, false, err
			}
			prm.Type = ty
		}
		if p.accept(PUNCT, "=") {
			// Default values are parsed and discarded; callers always
			// pass every parameter in generated code.
			if _, err := p.expr(); err != nil {
				return nil, false, err
			}
		}
		params = append(params, prm)
		if p.accept(PUNCT, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(PUNCT, ")"); err != nil {
		return nil, false, err
	}
	return params, false, nil
}

// ---------------------------------------------------------------------------
// Type annotations (token-stream parser producing types.Type)

func (p *parser) typeAnn() (types.Type, error) {
	first, err := p.typePostfix()
	if err != nil {
		return nil, err
	}
	members := []types.Type{first}
	for p.accept(PUNCT, "|") {
		m, err := p.typePostfix()
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	return types.Union(members...), nil
}

func (p *parser) typePostfix() (types.Type, error) {
	t, err := p.typePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("[") {
		save := p.i
		p.next()
		if !p.accept(PUNCT, "]") {
			p.i = save
			break
		}
		t = types.List(t)
	}
	return t, nil
}

func (p *parser) typePrimary() (types.Type, error) {
	t := p.cur()
	switch {
	case t.Kind == STRING:
		p.next()
		return types.Literal(t.Text), nil
	case t.Kind == NUMBER:
		p.next()
		return types.Literal(t.Num), nil
	case p.isPunct("-"):
		p.next()
		n := p.next()
		if n.Kind != NUMBER {
			return nil, p.errf("expected number after '-' in type")
		}
		return types.Literal(-n.Num), nil
	case p.isPunct("("):
		p.next()
		inner, err := p.typeAnn()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(PUNCT, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.isPunct("{"):
		p.next()
		var fields []types.Field
		for !p.isPunct("}") {
			nameTok := p.next()
			if nameTok.Kind != IDENT && nameTok.Kind != KEYWORD && nameTok.Kind != STRING {
				return nil, &CompileError{Pos: nameTok.Pos, Msg: "expected field name in object type"}
			}
			p.accept(PUNCT, "?")
			if _, err := p.expect(PUNCT, ":"); err != nil {
				return nil, err
			}
			ft, err := p.typeAnn()
			if err != nil {
				return nil, err
			}
			fields = append(fields, types.Field{Name: nameTok.Text, Type: ft})
			if !p.accept(PUNCT, ";") && !p.accept(PUNCT, ",") {
				break
			}
		}
		if _, err := p.expect(PUNCT, "}"); err != nil {
			return nil, err
		}
		return types.Dict(fields...), nil
	case t.Kind == IDENT || t.Kind == KEYWORD:
		p.next()
		switch t.Text {
		case "number":
			return types.Float, nil
		case "string":
			return types.Str, nil
		case "boolean":
			return types.Bool, nil
		case "void", "null", "undefined":
			return types.Void, nil
		case "any", "unknown", "object":
			return types.Any, nil
		case "true":
			return types.Literal(true), nil
		case "false":
			return types.Literal(false), nil
		case "Date":
			return types.Str, nil
		case "Array":
			if p.accept(PUNCT, "<") {
				elem, err := p.typeAnn()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(PUNCT, ">"); err != nil {
					return nil, err
				}
				return types.List(elem), nil
			}
			return types.List(types.Any), nil
		default:
			return nil, &CompileError{Pos: t.Pos, Msg: fmt.Sprintf("unknown type name %q", t.Text)}
		}
	default:
		return nil, p.errf("expected type, found %s", t)
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) expr() (Expr, error) { return p.conditional() }

func (p *parser) conditional() (Expr, error) {
	cond, err := p.nullish()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	pos := p.next().Pos
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(PUNCT, ":"); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{base: base{pos}, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) binaryLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range ops {
			if p.isPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		pos := p.next().Pos
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{base: base{pos}, Op: matched, L: l, R: r}
	}
}

func (p *parser) nullish() (Expr, error) {
	return p.binaryLevel([]string{"??"}, p.logicalOr)
}

func (p *parser) logicalOr() (Expr, error) {
	return p.binaryLevel([]string{"||"}, p.logicalAnd)
}

func (p *parser) logicalAnd() (Expr, error) {
	return p.binaryLevel([]string{"&&"}, p.bitOr)
}

func (p *parser) bitOr() (Expr, error) {
	return p.binaryLevel([]string{"|"}, p.bitXor)
}

func (p *parser) bitXor() (Expr, error) {
	return p.binaryLevel([]string{"^"}, p.bitAnd)
}

func (p *parser) bitAnd() (Expr, error) {
	return p.binaryLevel([]string{"&"}, p.equality)
}

func (p *parser) equality() (Expr, error) {
	return p.binaryLevel([]string{"===", "!==", "==", "!="}, p.relational)
}

func (p *parser) relational() (Expr, error) {
	return p.binaryLevel([]string{"<=", ">=", "<", ">"}, p.additive)
}

func (p *parser) additive() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.multiplicative)
}

func (p *parser) multiplicative() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.power)
}

func (p *parser) power() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	if p.isPunct("**") {
		pos := p.next().Pos
		r, err := p.power() // right associative
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{base: base{pos}, Op: "**", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	pos := p.cur().Pos
	switch {
	case p.isPunct("-"), p.isPunct("+"), p.isPunct("!"), p.isPunct("~"):
		op := p.next().Text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{pos}, Op: op, X: x}, nil
	case p.isKeyword("typeof"):
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{base: base{pos}, Op: "typeof", X: x}, nil
	case p.isKeyword("await"):
		// await is a no-op in the reproduction's synchronous runtime.
		p.next()
		return p.unary()
	case p.isKeyword("new"):
		p.next()
		ctor := p.next()
		if ctor.Kind != IDENT {
			return nil, &CompileError{Pos: ctor.Pos, Msg: "expected constructor name after new"}
		}
		ne := &NewExpr{base: base{pos}, Ctor: ctor.Text}
		if p.accept(PUNCT, "(") {
			for !p.isPunct(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				ne.Args = append(ne.Args, a)
				if !p.accept(PUNCT, ",") {
					break
				}
			}
			if _, err := p.expect(PUNCT, ")"); err != nil {
				return nil, err
			}
		}
		return p.postfixOps(ne)
	default:
		return p.postfix()
	}
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	return p.postfixOps(x)
}

func (p *parser) postfixOps(x Expr) (Expr, error) {
	for {
		pos := p.cur().Pos
		switch {
		case p.isPunct("."):
			p.next()
			name := p.next()
			if name.Kind != IDENT && name.Kind != KEYWORD {
				return nil, &CompileError{Pos: name.Pos, Msg: fmt.Sprintf("expected property name, found %s", name)}
			}
			x = &MemberExpr{base: base{pos}, X: x, Name: name.Text}
		case p.isPunct("?") && p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == PUNCT && p.toks[p.i+1].Text == ".":
			p.next()
			p.next()
			name := p.next()
			if name.Kind != IDENT && name.Kind != KEYWORD {
				return nil, &CompileError{Pos: name.Pos, Msg: "expected property name after ?."}
			}
			x = &MemberExpr{base: base{pos}, X: x, Name: name.Text, Opt: true}
		case p.isPunct("["):
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(PUNCT, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{base: base{pos}, X: x, Index: idx}
		case p.isPunct("("):
			p.next()
			call := &CallExpr{base: base{pos}, Fn: x}
			for !p.isPunct(")") {
				spread := p.accept(PUNCT, "...")
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				call.Spreads = append(call.Spreads, spread)
				if !p.accept(PUNCT, ",") {
					break
				}
			}
			if _, err := p.expect(PUNCT, ")"); err != nil {
				return nil, err
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	pos := t.Pos
	switch {
	case t.Kind == NUMBER:
		p.next()
		return &NumberLit{base: base{pos}, Value: t.Num}, nil
	case t.Kind == STRING:
		p.next()
		return &StringLit{base: base{pos}, Value: t.Text}, nil
	case t.Kind == TEMPLATE:
		p.next()
		return parseTemplate(t)
	case p.isKeyword("true"):
		p.next()
		return &BoolLit{base: base{pos}, Value: true}, nil
	case p.isKeyword("false"):
		p.next()
		return &BoolLit{base: base{pos}, Value: false}, nil
	case p.isKeyword("null"), p.isKeyword("undefined"):
		p.next()
		return &NullLit{base{pos}}, nil
	case p.isKeyword("function"):
		p.next()
		if p.cur().Kind == IDENT {
			p.next() // function expressions may be named; name is unused
		}
		params, named, err := p.paramList()
		if err != nil {
			return nil, err
		}
		if p.accept(PUNCT, ":") {
			if _, err := p.typeAnn(); err != nil {
				return nil, err
			}
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &FuncLit{base: base{pos}, Params: params, Named: named, Body: body}, nil
	case t.Kind == IDENT:
		// Could be `x => ...`.
		if p.i+1 < len(p.toks) && p.toks[p.i+1].Kind == PUNCT && p.toks[p.i+1].Text == "=>" {
			p.next()
			p.next()
			return p.arrowBody(pos, []Param{{Name: t.Text, Pos: pos}})
		}
		p.next()
		return &Ident{base: base{pos}, Name: t.Text}, nil
	case p.isPunct("("):
		if p.isArrowAhead() {
			params, _, err := p.paramList()
			if err != nil {
				return nil, err
			}
			if p.accept(PUNCT, ":") {
				if _, err := p.typeAnn(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(PUNCT, "=>"); err != nil {
				return nil, err
			}
			return p.arrowBody(pos, params)
		}
		p.next()
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(PUNCT, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.isPunct("["):
		p.next()
		al := &ArrayLit{base: base{pos}}
		for !p.isPunct("]") {
			spread := p.accept(PUNCT, "...")
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			al.Elems = append(al.Elems, e)
			al.Spreads = append(al.Spreads, spread)
			if !p.accept(PUNCT, ",") {
				break
			}
		}
		if _, err := p.expect(PUNCT, "]"); err != nil {
			return nil, err
		}
		return al, nil
	case p.isPunct("{"):
		p.next()
		ol := &ObjectLit{base: base{pos}}
		for !p.isPunct("}") {
			keyTok := p.next()
			var key string
			switch keyTok.Kind {
			case IDENT, KEYWORD, STRING:
				key = keyTok.Text
			case NUMBER:
				key = trimFloat(keyTok.Num)
			default:
				return nil, &CompileError{Pos: keyTok.Pos, Msg: fmt.Sprintf("expected object key, found %s", keyTok)}
			}
			f := ObjectField{Key: key}
			if p.accept(PUNCT, ":") {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				f.Value = v
			}
			ol.Fields = append(ol.Fields, f)
			if !p.accept(PUNCT, ",") {
				break
			}
		}
		if _, err := p.expect(PUNCT, "}"); err != nil {
			return nil, err
		}
		return ol, nil
	default:
		return nil, p.errf("unexpected token %s", t)
	}
}

func (p *parser) arrowBody(pos Pos, params []Param) (Expr, error) {
	if p.isPunct("{") {
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ArrowFunc{base: base{pos}, Params: params, Body: body}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ArrowFunc{base: base{pos}, Params: params, Expr: e}, nil
}

// isArrowAhead reports whether the '(' at the cursor opens an arrow
// function parameter list, by scanning to the matching ')' and checking
// for '=>' (optionally after a return-type annotation).
func (p *parser) isArrowAhead() bool {
	depth := 0
	j := p.i
	for ; j < len(p.toks); j++ {
		t := p.toks[j]
		if t.Kind != PUNCT {
			continue
		}
		switch t.Text {
		case "(", "[", "{":
			depth++
		case ")", "]", "}":
			depth--
			if depth == 0 {
				goto after
			}
		}
	}
	return false
after:
	j++
	if j >= len(p.toks) {
		return false
	}
	if p.toks[j].Kind == PUNCT && p.toks[j].Text == "=>" {
		return true
	}
	// (a: T): R => body — skip a possible return annotation.
	if p.toks[j].Kind == PUNCT && p.toks[j].Text == ":" {
		for k := j + 1; k < len(p.toks) && k < j+24; k++ {
			if p.toks[k].Kind == PUNCT && p.toks[k].Text == "=>" {
				return true
			}
			if p.toks[k].Kind == PUNCT && (p.toks[k].Text == ";" || p.toks[k].Text == ")") {
				return false
			}
		}
	}
	return false
}

// parseTemplate re-scans a TEMPLATE token body into chunks and embedded
// expressions.
func parseTemplate(t Token) (Expr, error) {
	raw := t.Text
	tl := &TemplateLit{base: base{t.Pos}}
	var chunk strings.Builder
	i := 0
	for i < len(raw) {
		if raw[i] == '\\' && i+1 < len(raw) {
			switch raw[i+1] {
			case 'n':
				chunk.WriteByte('\n')
			case 't':
				chunk.WriteByte('\t')
			case '`':
				chunk.WriteByte('`')
			case '$':
				chunk.WriteByte('$')
			case '\\':
				chunk.WriteByte('\\')
			default:
				chunk.WriteByte(raw[i+1])
			}
			i += 2
			continue
		}
		if strings.HasPrefix(raw[i:], "${") {
			depth := 1
			j := i + 2
			for j < len(raw) && depth > 0 {
				switch raw[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			if depth != 0 {
				return nil, &CompileError{Pos: t.Pos, Msg: "unterminated ${ in template literal"}
			}
			exprSrc := raw[i+2 : j-1]
			sub, err := Parse("(" + exprSrc + ")")
			if err != nil {
				return nil, &CompileError{Pos: t.Pos, Msg: fmt.Sprintf("invalid template expression %q: %v", exprSrc, err)}
			}
			if len(sub.Stmts) != 1 {
				return nil, &CompileError{Pos: t.Pos, Msg: "template expression must be a single expression"}
			}
			es, ok := sub.Stmts[0].(*ExprStmt)
			if !ok {
				return nil, &CompileError{Pos: t.Pos, Msg: "template expression must be an expression"}
			}
			tl.Chunks = append(tl.Chunks, chunk.String())
			chunk.Reset()
			tl.Exprs = append(tl.Exprs, es.X)
			i = j
			continue
		}
		chunk.WriteByte(raw[i])
		i++
	}
	tl.Chunks = append(tl.Chunks, chunk.String())
	return tl, nil
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
