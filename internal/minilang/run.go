package minilang

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// CompiledFunc is a parsed, checked minilang function ready to be called
// with AskIt's named-argument convention. It is the runtime shape of a
// "generated function" (paper §III-D): the replacement for a define call
// once code generation succeeds.
//
// Two execution engines back Call: the default slot-resolved closure IR
// (compile.go), lowered once per function and cached here, and the
// original AST tree-walker (eval.go), retained as the reference
// implementation behind the TreeWalker switch.
type CompiledFunc struct {
	Prog *Program
	Decl *FuncDecl
	// MaxSteps overrides the interpreter step budget (<=0: default).
	MaxSteps int64
	// Stdout receives console.log output from the function; nil discards.
	Stdout io.Writer
	// Hosts are extra global bindings injected before execution, e.g.
	// the appendFile/readFile file-access functions the AskIt engine
	// provides for codable file tasks (paper §II-A2). The compiled
	// engine captures host bindings when the program is prepared; set
	// them before the first Call (or Prepare).
	Hosts map[string]any
	// TreeWalker forces the reference AST-walking engine for every Call.
	TreeWalker bool
	src        string

	prepOnce sync.Once
	prepared *compiledProgram
	prepDecl *FuncDecl
	prepErr  error
}

// ErrSharedGlobalMutation is the Prepare error for programs the
// compiled engine declines because they may write to (or alias) a
// shared builtin global object; Call transparently uses the
// tree-walker for them.
var ErrSharedGlobalMutation = fmt.Errorf("minilang: program may mutate shared globals; using tree-walker engine")

// CompileFunction parses src, locates function name, and statically
// checks the whole program. Any error is a *CompileError or CheckErrors,
// both of which the codegen loop treats as "invalid code, retry".
func CompileFunction(src, name string) (*CompiledFunc, error) {
	prog, decl, err := ParseFunction(src, name)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return &CompiledFunc{Prog: prog, Decl: decl, src: src}, nil
}

// Source returns the source text the function was compiled from.
func (cf *CompiledFunc) Source() string { return cf.src }

// Name returns the declared function name.
func (cf *CompiledFunc) Name() string { return cf.Decl.Name }

// Prepare lowers the program to the slot-resolved closure IR
// (compile.go), constant-folding it first with the Optimize pass. It
// runs once; subsequent calls return the cached result. Call invokes it
// lazily, so using Prepare directly is only needed to front-load the
// cost or to inspect lowering errors. On error Call falls back to the
// tree-walker, so a Prepare failure never breaks execution.
func (cf *CompiledFunc) Prepare() error {
	cf.prepOnce.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				cf.prepErr = fmt.Errorf("minilang: compile panic: %v", r)
			}
		}()
		prog := Optimize(cf.Prog)
		decl := prog.Funcs()[cf.Decl.Name]
		if decl == nil {
			cf.prepErr = fmt.Errorf("minilang: function %q lost during optimization", cf.Decl.Name)
			return
		}
		// The compiled engine shares the builtin global objects across
		// calls; a program that could mutate or alias them must run on
		// the per-call tree-walker to keep calls isolated (and to avoid
		// unsynchronized writes to shared maps under concurrency).
		// builtinGlobals is shared; merge host bindings into a copy
		// rather than writing into the package-level set.
		names := builtinGlobals
		if len(cf.Hosts) > 0 {
			names = make(map[string]bool, len(builtinGlobals)+len(cf.Hosts))
			for name := range builtinGlobals {
				names[name] = true
			}
			for name := range cf.Hosts {
				names[name] = true
			}
		}
		if mayMutateSharedGlobals(prog, names) {
			cf.prepErr = ErrSharedGlobalMutation
			return
		}
		cp := compileProgram(prog, cf.Hosts)
		if cp.static {
			// The top level holds only immutable function declarations:
			// load the module once and share the frame across calls.
			in := &Interp{MaxSteps: cf.MaxSteps}
			mod, err := cp.load(in)
			if err != nil {
				cf.prepErr = err
				return
			}
			mod.in = nil
			cp.staticMod = mod
		}
		cf.prepared, cf.prepDecl = cp, decl
	})
	return cf.prepErr
}

// Engine reports which engine Call will use: "compiled" or "tree-walker".
func (cf *CompiledFunc) Engine() string {
	if cf.TreeWalker || cf.Prepare() != nil {
		return "tree-walker"
	}
	return "compiled"
}

// Call invokes the function with named arguments expressed in the JSON
// data model (nil, bool, float64/int, string, []any, map[string]any) and
// returns the result converted back to the JSON data model. The step
// loop polls ctx, so cancelling it stops runaway generated code without
// waiting for the fuel budget; a nil ctx disables the polling.
func (cf *CompiledFunc) Call(ctx context.Context, args map[string]any) (any, error) {
	if cf.TreeWalker || cf.Prepare() != nil {
		return cf.callTreeWalker(ctx, args)
	}
	in := callInterpPool.Get().(*Interp)
	in.MaxSteps = cf.MaxSteps
	in.Stdout = cf.Stdout
	in.Ctx = ctx
	in.steps = 0
	v, err := cf.prepared.callFunction(in, cf.prepDecl, args)
	in.Stdout = nil
	in.Ctx = nil
	callInterpPool.Put(in)
	if err != nil {
		return nil, err
	}
	return ToJSON(v), nil
}

// callTreeWalker executes via the reference AST interpreter, building a
// fresh environment per call exactly as the seed implementation did.
func (cf *CompiledFunc) callTreeWalker(ctx context.Context, args map[string]any) (any, error) {
	in := NewInterp()
	if cf.MaxSteps > 0 {
		in.MaxSteps = cf.MaxSteps
	}
	in.Stdout = cf.Stdout
	in.Ctx = ctx
	for name, fn := range cf.Hosts {
		_ = in.Globals().Define(name, fn, true)
	}
	v, err := in.CallFunction(cf.Prog, cf.Decl, args)
	if err != nil {
		return nil, err
	}
	return ToJSON(v), nil
}

// Run parses, checks and executes a whole program, returning anything
// written via console.log to out. Used by cmd/minirun.
func Run(src string, out io.Writer) error {
	prog, err := Parse(src)
	if err != nil {
		return err
	}
	if err := Check(prog); err != nil {
		return err
	}
	in := NewInterp()
	in.Stdout = out
	_, err = in.LoadProgram(prog)
	return err
}

// Example is an input/output pair used for semantic validation of
// generated code (paper §III-B examples, §III-D Step 3).
type Example struct {
	Input  map[string]any
	Output any
}

// Validate runs the function on each example and returns a descriptive
// error for the first mismatch. Numeric outputs compare with a small
// relative tolerance, because LLM-written arithmetic may reorder
// floating-point operations. ctx bounds the example executions the same
// way it bounds Call.
func (cf *CompiledFunc) Validate(ctx context.Context, examples []Example) error {
	for i, ex := range examples {
		got, err := cf.Call(ctx, ex.Input)
		if err != nil {
			return fmt.Errorf("example %d: %w", i, err)
		}
		if !jsonEqual(got, ex.Output) {
			return fmt.Errorf("example %d: got %v, want %v", i, got, ex.Output)
		}
	}
	return nil
}

func jsonEqual(a, b any) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case float64:
		y, ok := toFloat(b)
		return ok && floatClose(x, y)
	case int:
		y, ok := toFloat(b)
		return ok && floatClose(float64(x), y)
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !jsonEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, present := y[k]
			if !present || !jsonEqual(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := 1.0
	if aa := abs(a); aa > scale {
		scale = aa
	}
	if ab := abs(b); ab > scale {
		scale = ab
	}
	return diff <= 1e-9*scale
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
