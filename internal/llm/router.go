package llm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Backend describes one upstream Client in a Router.
type Backend struct {
	// Name identifies the backend in stats; defaults to "backend-<i>".
	Name string
	// Client serves the completions; required.
	Client Client
	// MaxConcurrent bounds in-flight Complete calls on this backend;
	// <=0 means unbounded. Callers beyond the bound block until a slot
	// frees (or their context is canceled).
	MaxConcurrent int
}

// Router is a Client that fans requests over several backends with
// round-robin placement, failover on backend errors, and per-backend
// bounded concurrency. It is the multi-backend serving tier: one engine
// can drive N simulated (or real) model endpoints as a single Client.
//
// Placement: each request starts at the next backend in round-robin
// order and walks the ring on failure. A backend whose concurrency
// bound is saturated is skipped on the first (non-blocking) walk —
// another backend may be idle — and only when *every* backend is
// either saturated or has already failed does the request block for a
// slot. Cancellation errors abort immediately and are returned as-is;
// any other backend error counts as a failover and the next backend is
// tried. When every backend has failed, the last error is returned
// wrapped as transient, so the engine's retry loops know the request
// is retryable.
type Router struct {
	backends        []*routerBackend
	next            atomic.Uint64
	requests        atomic.Uint64
	failovers       atomic.Uint64
	exhausted       atomic.Uint64
	saturationSkips atomic.Uint64
}

type routerBackend struct {
	name     string
	client   Client
	sem      chan struct{} // nil = unbounded
	requests atomic.Uint64
	failures atomic.Uint64
}

// NewRouter validates the backends and returns a Router.
func NewRouter(backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("llm: router needs at least one backend")
	}
	r := &Router{}
	for i, b := range backends {
		if b.Client == nil {
			return nil, fmt.Errorf("llm: router backend %d has no client", i)
		}
		rb := &routerBackend{name: b.Name, client: b.Client}
		if rb.name == "" {
			rb.name = fmt.Sprintf("backend-%d", i)
		}
		if b.MaxConcurrent > 0 {
			rb.sem = make(chan struct{}, b.MaxConcurrent)
		}
		r.backends = append(r.backends, rb)
	}
	return r, nil
}

var _ Client = (*Router)(nil)

func (b *routerBackend) acquire(ctx context.Context) error {
	if b.sem == nil {
		return nil
	}
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes a concurrency slot only if one is free right now.
func (b *routerBackend) tryAcquire() bool {
	if b.sem == nil {
		return true
	}
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *routerBackend) release() {
	if b.sem != nil {
		<-b.sem
	}
}

// Complete implements Client by routing the request to a backend.
func (r *Router) Complete(ctx context.Context, req Request) (Response, error) {
	r.requests.Add(1)
	n := len(r.backends)
	start := int((r.next.Add(1) - 1) % uint64(n)) // mod before int: never negative, even past overflow
	var lastErr error

	// attempt runs the request on an already-acquired backend. abort is
	// true for cancellation; a failover is counted unless this was the
	// request's final candidate.
	attempt := func(b *routerBackend, last bool) (Response, error, bool) {
		resp, err := b.client.Complete(ctx, req)
		b.release()
		b.requests.Add(1)
		if err == nil {
			return resp, nil, false
		}
		b.failures.Add(1)
		if IsCancellation(err) || ctx.Err() != nil {
			return Response{}, err, true
		}
		lastErr = err
		if !last {
			r.failovers.Add(1)
		}
		return Response{}, err, false
	}

	// Pass 1: non-blocking walk of the ring. A saturated backend is
	// skipped, not waited on — an idle backend further along the ring
	// should take the request instead.
	var saturated []*routerBackend
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if !b.tryAcquire() {
			r.saturationSkips.Add(1)
			saturated = append(saturated, b)
			continue
		}
		resp, err, abort := attempt(b, i == n-1 && len(saturated) == 0)
		if err == nil {
			return resp, nil
		}
		if abort {
			return Response{}, err
		}
	}

	// Pass 2: every backend was saturated or has already failed; now
	// blocking on the saturated ones (in ring order) is the only option
	// left short of failing the request.
	for j, b := range saturated {
		if err := b.acquire(ctx); err != nil {
			return Response{}, err
		}
		resp, err, abort := attempt(b, j == len(saturated)-1)
		if err == nil {
			return resp, nil
		}
		if abort {
			return Response{}, err
		}
	}
	r.exhausted.Add(1)
	return Response{}, MarkTransient(fmt.Errorf("llm: router: all %d backends failed: %w", n, lastErr))
}

// BackendStats is one backend's traffic snapshot.
type BackendStats struct {
	Name     string
	Requests uint64
	Failures uint64
}

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	// Requests counts Complete calls on the router.
	Requests uint64
	// Failovers counts backend errors that moved a request to the next
	// backend in the ring.
	Failovers uint64
	// Exhausted counts requests for which every backend failed.
	Exhausted uint64
	// SaturationSkips counts non-blocking walk steps that skipped a
	// backend because its concurrency bound was full.
	SaturationSkips uint64
	// Backends holds per-backend counters in ring order.
	Backends []BackendStats
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Requests:        r.requests.Load(),
		Failovers:       r.failovers.Load(),
		Exhausted:       r.exhausted.Load(),
		SaturationSkips: r.saturationSkips.Load(),
	}
	for _, b := range r.backends {
		s.Backends = append(s.Backends, BackendStats{
			Name:     b.name,
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
		})
	}
	return s
}
