package llm

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Backend describes one upstream Client in a Router.
type Backend struct {
	// Name identifies the backend in stats; defaults to "backend-<i>".
	Name string
	// Client serves the completions; required.
	Client Client
	// MaxConcurrent bounds in-flight Complete calls on this backend;
	// <=0 means unbounded. Callers beyond the bound block until a slot
	// frees (or their context is canceled).
	MaxConcurrent int
}

// RouterOptions tunes the router's resilience machinery. The zero value
// gives the defaults: breakers on (threshold 5, 1s open window), hedging
// on with a dynamic p99-derived delay that only activates after
// DefaultHedgeMinSamples successful requests.
type RouterOptions struct {
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker. 0 means DefaultBreakerThreshold;
	// negative disables breakers entirely.
	BreakerThreshold int
	// BreakerOpenFor is how long an open breaker rejects traffic before
	// half-opening for a probe. 0 means DefaultBreakerOpenFor.
	BreakerOpenFor time.Duration
	// HedgeDelay is how long to wait on the first attempt before
	// launching a hedged second attempt on the next backend. 0 derives
	// the delay from observed latency (2×p99, floored at 1ms) once
	// enough samples exist; negative disables hedging.
	HedgeDelay time.Duration
	// HedgeMinSamples is the successful-request count required before
	// the dynamic hedge delay activates. 0 means
	// DefaultHedgeMinSamples. Ignored when HedgeDelay is fixed.
	HedgeMinSamples int
	// Metrics, when non-nil, is the observability registry the router
	// registers its counters (router-wide and per-backend, labeled by
	// backend name) and breaker-transition events in. Share one registry
	// with the engine and server for a single /metrics exposition. Nil
	// gives the router a private registry.
	Metrics *obs.Registry
}

// Hedging defaults (RouterOptions zero values).
const (
	DefaultHedgeMinSamples = 64
	minHedgeDelay          = time.Millisecond
	latencyRingSize        = 512
)

// Span names the router tier contributes to request traces; named
// constants per askit-vet's span-name rule.
const (
	// spanLLMComplete covers one routed Complete call, hedging and
	// failover included.
	spanLLMComplete = "llm_complete"
	// spanBackendAttempt covers one attempt on one backend.
	spanBackendAttempt = "backend_attempt"
)

// Router is a Client that fans requests over several backends with
// round-robin placement, failover on backend errors, and per-backend
// bounded concurrency. It is the multi-backend serving tier: one engine
// can drive N simulated (or real) model endpoints as a single Client.
//
// Placement: each request starts at the next backend in round-robin
// order and walks the ring on failure. A backend whose concurrency
// bound is saturated is skipped on the first (non-blocking) walk —
// another backend may be idle — and only when *every* backend is
// either saturated or has already failed does the request block for a
// slot. Cancellation errors abort immediately and are returned as-is;
// any other backend error counts as a failover and the next backend is
// tried. When every backend has failed, the last error is returned
// wrapped as transient, so the engine's retry loops know the request
// is retryable.
//
// Resilience: each backend carries a circuit breaker — after
// BreakerThreshold consecutive failures its traffic is skipped for
// BreakerOpenFor, then a single probe request decides recovery. When
// every backend is circuit-open the router fails fast with a transient
// error instead of queueing. Once enough latency samples exist, a
// request that outlives the hedge delay launches a second ring walk
// offset by one backend; the first success wins and the loser's
// context is canceled.
type Router struct {
	backends []*routerBackend
	opts     RouterOptions
	hedgeMin int
	metrics  *obs.Registry // never nil after NewRouterWithOptions

	next             atomic.Uint64
	requests         *obs.Counter
	failovers        *obs.Counter
	exhausted        *obs.Counter
	saturationSkips  *obs.Counter
	breakerSkips     *obs.Counter
	breakerFastFails *obs.Counter
	hedges           *obs.Counter
	hedgeWins        *obs.Counter

	lat latencyRing
}

type routerBackend struct {
	name     string
	client   Client
	sem      chan struct{} // nil = unbounded
	breaker  *Breaker      // nil = disabled
	requests *obs.Counter
	failures *obs.Counter
}

// NewRouter validates the backends and returns a Router with default
// resilience options.
func NewRouter(backends ...Backend) (*Router, error) {
	return NewRouterWithOptions(RouterOptions{}, backends...)
}

// NewRouterWithOptions validates the backends and returns a Router.
func NewRouterWithOptions(opts RouterOptions, backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("llm: router needs at least one backend")
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{opts: opts, hedgeMin: opts.HedgeMinSamples, metrics: reg}
	if r.hedgeMin <= 0 {
		r.hedgeMin = DefaultHedgeMinSamples
	}
	rc := func(key string) obs.Opt { return obs.JSONKey("router", key) }
	r.requests = reg.Counter("askit_router_requests_total",
		obs.Help("Complete calls on the router."), rc("requests"))
	r.failovers = reg.Counter("askit_router_failovers_total",
		obs.Help("Backend errors that moved a request to the next backend."), rc("failovers"))
	r.exhausted = reg.Counter("askit_router_exhausted_total",
		obs.Help("Requests for which every backend failed."), rc("exhausted"))
	r.saturationSkips = reg.Counter("askit_router_saturation_skips_total",
		obs.Help("Walk steps that skipped a concurrency-saturated backend."), rc("saturation_skips"))
	r.breakerSkips = reg.Counter("askit_router_breaker_skips_total",
		obs.Help("Walk steps that skipped a circuit-open backend."), rc("breaker_skips"))
	r.breakerFastFails = reg.Counter("askit_router_breaker_fast_fails_total",
		obs.Help("Requests rejected because every backend's breaker was open."), rc("breaker_fast_fails"))
	r.hedges = reg.Counter("askit_router_hedges_total",
		obs.Help("Hedged second attempts launched for straggling requests."), rc("hedges"))
	r.hedgeWins = reg.Counter("askit_router_hedge_wins_total",
		obs.Help("Requests where the hedged attempt finished first."), rc("hedge_wins"))
	for i, b := range backends {
		if b.Client == nil {
			return nil, fmt.Errorf("llm: router backend %d has no client", i)
		}
		rb := &routerBackend{
			name:    b.Name,
			client:  b.Client,
			breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerOpenFor),
		}
		if rb.name == "" {
			rb.name = fmt.Sprintf("backend-%d", i)
		}
		if b.MaxConcurrent > 0 {
			rb.sem = make(chan struct{}, b.MaxConcurrent)
		}
		lbl := obs.Labels("backend", rb.name)
		rb.requests = reg.Counter("askit_backend_requests_total",
			obs.Help("Requests attempted per backend."), lbl)
		rb.failures = reg.Counter("askit_backend_failures_total",
			obs.Help("Failed requests per backend."), lbl)
		if rb.breaker != nil {
			// Breaker transitions are rare state changes: counted and
			// event-logged, with the live state readable as a gauge
			// (0 closed, 0.5 half-open, 1 open).
			br, name := rb.breaker, rb.name
			br.SetNotify(func(to string) { reg.Emit("breaker-"+to, name) })
			reg.CounterFunc("askit_backend_breaker_opens_total", br.OpenCount,
				obs.Help("Breaker open transitions per backend."), lbl)
			reg.GaugeFunc("askit_backend_breaker_open", func() float64 {
				state, _ := br.Snapshot(time.Now())
				switch state {
				case "open":
					return 1
				case "half-open":
					return 0.5
				default:
					return 0
				}
			}, obs.Help("Breaker state per backend: 0 closed, 0.5 half-open, 1 open."), lbl)
		}
		r.backends = append(r.backends, rb)
	}
	return r, nil
}

// Metrics returns the router's observability registry (the one passed
// in RouterOptions.Metrics, or the private one). Always non-nil.
func (r *Router) Metrics() *obs.Registry { return r.metrics }

var _ Client = (*Router)(nil)

func (b *routerBackend) acquire(ctx context.Context) error {
	if b.sem == nil {
		return nil
	}
	select {
	case b.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire takes a concurrency slot only if one is free right now.
func (b *routerBackend) tryAcquire() bool {
	if b.sem == nil {
		return true
	}
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *routerBackend) release() {
	if b.sem != nil {
		<-b.sem
	}
}

// latencyRing holds recent successful wall-clock latencies for the
// dynamic hedge delay. Fixed size, overwritten round-robin.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyRingSize]time.Duration
	n   int // filled entries
	pos int
}

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.pos] = d
	l.pos = (l.pos + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p99 returns the 99th-percentile latency and the sample count.
func (l *latencyRing) p99() (time.Duration, int) {
	l.mu.Lock()
	n := l.n
	samples := make([]time.Duration, n)
	copy(samples, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(99*(n-1))/100], n
}

// hedgeDelay returns the delay before a hedged second attempt, or 0
// when hedging should not fire for this request.
func (r *Router) hedgeDelay() time.Duration {
	if r.opts.HedgeDelay < 0 || len(r.backends) < 2 {
		return 0
	}
	if r.opts.HedgeDelay > 0 {
		return r.opts.HedgeDelay
	}
	p99, n := r.lat.p99()
	if n < r.hedgeMin {
		return 0
	}
	d := 2 * p99
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d
}

// Complete implements Client by routing the request to a backend,
// hedging a straggling first attempt with a second ring walk when the
// dynamic (or fixed) hedge delay has activated.
func (r *Router) Complete(ctx context.Context, req Request) (Response, error) {
	ctx, sp := obs.StartSpan(ctx, spanLLMComplete)
	resp, err := r.complete(ctx, sp, req)
	if sp != nil {
		if err != nil {
			sp.Fail(err.Error())
		}
		sp.End()
	}
	return resp, err
}

// complete is Complete's body; sp (possibly nil) is annotated with
// hedge activity. The walk goroutines inherit ctx, so their
// backend_attempt spans — hedge losers included — parent here.
func (r *Router) complete(ctx context.Context, sp *obs.Span, req Request) (Response, error) {
	r.requests.Add(1)
	n := len(r.backends)
	start := int((r.next.Add(1) - 1) % uint64(n)) // mod before int: never negative, even past overflow
	t0 := time.Now()

	delay := r.hedgeDelay()
	if delay <= 0 {
		resp, err := r.walk(ctx, req, start)
		if err == nil {
			r.lat.add(time.Since(t0))
		}
		return resp, err
	}

	type result struct {
		resp  Response
		err   error
		hedge bool
	}
	ch := make(chan result, 2) // both walks can always deliver; losers never block
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		resp, err := r.walk(pctx, req, start)
		ch <- result{resp, err, false}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	var hcancel context.CancelFunc
	pending := 1
	var lastRes result
	for {
		select {
		case res := <-ch:
			pending--
			if res.err == nil {
				if res.hedge {
					r.hedgeWins.Add(1)
					sp.SetAttr("hedge_win", "true")
				}
				pcancel()
				if hcancel != nil {
					hcancel()
				}
				r.lat.add(time.Since(t0))
				return res.resp, nil
			}
			// Prefer reporting a backend failure over the loser's
			// cancellation if both attempts end in error.
			if lastRes.err == nil || !IsCancellation(res.err) || IsCancellation(lastRes.err) {
				lastRes = res
			}
			if pending == 0 {
				if hcancel != nil {
					hcancel()
				}
				return lastRes.resp, lastRes.err
			}
		case <-timer.C:
			if hcancel == nil {
				r.hedges.Add(1)
				sp.SetAttr("hedge", "launched")
				r.metrics.Emit("hedge", fmt.Sprintf("first attempt past %v; racing a second backend", delay))
				var hctx context.Context
				hctx, hcancel = context.WithCancel(ctx)
				defer hcancel()
				pending++
				go func() {
					resp, err := r.walk(hctx, req, (start+1)%n)
					ch <- result{resp, err, true}
				}()
			}
		}
	}
}

// walk tries the backend ring once starting at start: a non-blocking
// pass that skips saturated and circuit-open backends, then a blocking
// pass over whatever was saturated. It is the unit of work a hedge
// races against.
func (r *Router) walk(ctx context.Context, req Request, start int) (Response, error) {
	n := len(r.backends)
	var lastErr error

	// attempt runs the request on an already-acquired backend. abort is
	// true for cancellation; a failover is counted unless this was the
	// request's final candidate.
	attempt := func(b *routerBackend, probe, last bool) (Response, error, bool) {
		actx, asp := obs.StartSpan(ctx, spanBackendAttempt)
		asp.SetAttr("backend", b.name)
		resp, err := b.client.Complete(actx, req)
		if asp != nil {
			switch {
			case err == nil:
			case IsCancellation(err) || ctx.Err() != nil:
				// A hedge loser's cancellation is the normal cost of a
				// hedge win, not an error worth retaining the trace for.
				asp.SetAttr("canceled", "true")
			default:
				asp.Fail(err.Error())
			}
			asp.End()
		}
		b.release()
		b.requests.Add(1)
		if err == nil {
			b.breaker.OnResult(time.Now(), true)
			return resp, nil, false
		}
		b.failures.Add(1)
		if IsCancellation(err) || ctx.Err() != nil {
			// The caller hung up mid-request; the backend's health is
			// unknown, so a consumed probe slot is returned, not settled.
			if probe {
				b.breaker.CancelProbe()
			}
			return Response{}, err, true
		}
		b.breaker.OnResult(time.Now(), false)
		lastErr = err
		if !last {
			r.failovers.Add(1)
		}
		return Response{}, err, false
	}

	// Pass 1: non-blocking walk of the ring. A saturated backend is
	// skipped, not waited on — an idle backend further along the ring
	// should take the request instead. A circuit-open backend is skipped
	// outright.
	var saturated []*routerBackend
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		ok, probe := b.breaker.Allow(time.Now())
		if !ok {
			r.breakerSkips.Add(1)
			continue
		}
		if !b.tryAcquire() {
			if probe {
				b.breaker.CancelProbe()
			}
			r.saturationSkips.Add(1)
			saturated = append(saturated, b)
			continue
		}
		resp, err, abort := attempt(b, probe, i == n-1 && len(saturated) == 0)
		if err == nil {
			return resp, nil
		}
		if abort {
			return Response{}, err
		}
	}

	// Pass 2: every backend was saturated, circuit-open, or has already
	// failed; now blocking on the saturated ones (in ring order) is the
	// only option left short of failing the request. Breakers are
	// re-consulted — one may have tripped (or half-opened) since pass 1.
	for j, b := range saturated {
		ok, probe := b.breaker.Allow(time.Now())
		if !ok {
			r.breakerSkips.Add(1)
			continue
		}
		if err := b.acquire(ctx); err != nil {
			if probe {
				b.breaker.CancelProbe()
			}
			return Response{}, err
		}
		resp, err, abort := attempt(b, probe, j == len(saturated)-1)
		if err == nil {
			return resp, nil
		}
		if abort {
			return Response{}, err
		}
	}
	if lastErr == nil {
		// Nothing was even attempted: every backend's breaker is open.
		// Fail fast and classified-transient — no queue buildup behind a
		// dead fleet, and the engine's retry loop knows it may recover.
		r.breakerFastFails.Add(1)
		obs.SpanFromContext(ctx).SetAttr("breaker_fast_fail", "true")
		return Response{}, MarkTransient(fmt.Errorf("llm: router: all %d backends circuit-open", n))
	}
	r.exhausted.Add(1)
	return Response{}, MarkTransient(fmt.Errorf("llm: router: all %d backends failed: %w", n, lastErr))
}

// BackendStats is one backend's traffic snapshot.
type BackendStats struct {
	Name     string
	Requests uint64
	Failures uint64
	// Breaker is the circuit state: "closed", "open", "half-open", or
	// "off" when breakers are disabled.
	Breaker string
	// BreakerOpens counts closed→open (and half-open→open) transitions.
	BreakerOpens uint64
}

// RouterStats is a snapshot of the router's counters.
type RouterStats struct {
	// Requests counts Complete calls on the router.
	Requests uint64
	// Failovers counts backend errors that moved a request to the next
	// backend in the ring.
	Failovers uint64
	// Exhausted counts requests for which every backend failed.
	Exhausted uint64
	// SaturationSkips counts non-blocking walk steps that skipped a
	// backend because its concurrency bound was full.
	SaturationSkips uint64
	// BreakerSkips counts walk steps that skipped a circuit-open backend.
	BreakerSkips uint64
	// BreakerFastFails counts requests rejected immediately because
	// every backend's breaker was open.
	BreakerFastFails uint64
	// Hedges counts second attempts launched for straggling requests.
	Hedges uint64
	// HedgeWins counts requests where the hedged attempt finished first.
	HedgeWins uint64
	// Backends holds per-backend counters in ring order.
	Backends []BackendStats
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Requests:         r.requests.Value(),
		Failovers:        r.failovers.Value(),
		Exhausted:        r.exhausted.Value(),
		SaturationSkips:  r.saturationSkips.Value(),
		BreakerSkips:     r.breakerSkips.Value(),
		BreakerFastFails: r.breakerFastFails.Value(),
		Hedges:           r.hedges.Value(),
		HedgeWins:        r.hedgeWins.Value(),
	}
	now := time.Now()
	for _, b := range r.backends {
		state, opens := b.breaker.Snapshot(now)
		s.Backends = append(s.Backends, BackendStats{
			Name:         b.name,
			Requests:     b.requests.Value(),
			Failures:     b.failures.Value(),
			Breaker:      state,
			BreakerOpens: opens,
		})
	}
	return s
}
