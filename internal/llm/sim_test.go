package llm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/jsonx"
	"repro/internal/minilang"
	"repro/internal/prompt"
	"repro/internal/template"
	"repro/internal/types"
)

func directPrompt(t *testing.T, tpl string, args map[string]any, ret types.Type) string {
	t.Helper()
	p, err := prompt.BuildDirect(prompt.DirectSpec{
		Template: template.MustParse(tpl),
		Args:     args,
		Return:   ret,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseDirectPrompt(t *testing.T) {
	p := directPrompt(t, "List {{n}} classic books on {{subject}}.",
		map[string]any{"n": 5, "subject": "computer science"}, types.List(types.Str))
	task, args, ok := ParseDirectPrompt(p)
	if !ok {
		t.Fatalf("parse failed:\n%s", p)
	}
	if task != "List 'n' classic books on 'subject'." {
		t.Errorf("task = %q", task)
	}
	if args["n"] != 5.0 || args["subject"] != "computer science" {
		t.Errorf("args = %v", args)
	}
}

func TestParseDirectPromptArrays(t *testing.T) {
	p := directPrompt(t, "Sort the numbers {{ns}} in ascending order.",
		map[string]any{"ns": []any{3.0, 1.0, 2.0}}, types.List(types.Float))
	_, args, ok := ParseDirectPrompt(p)
	if !ok {
		t.Fatal("parse failed")
	}
	arr, ok := args["ns"].([]any)
	if !ok || len(arr) != 3 || arr[0] != 3.0 {
		t.Errorf("ns = %#v", args["ns"])
	}
}

func TestSimDirectAnswer(t *testing.T) {
	sim := NewSim(1)
	sim.Noise = Noise{} // no corruption
	p := directPrompt(t, "Reverse the string {{s}}.", map[string]any{"s": "hello"}, types.Str)
	resp, err := sim.Complete(context.Background(), Request{Prompt: p, Model: "gpt-4"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonx.ExtractJSON(resp.Text)
	if err != nil {
		t.Fatalf("no JSON in %q", resp.Text)
	}
	m := v.(map[string]any)
	if m["answer"] != "olleh" {
		t.Errorf("answer = %v", m["answer"])
	}
	if _, ok := m["reason"].(string); !ok {
		t.Error("missing reason field")
	}
	if resp.Latency <= 0 {
		t.Error("latency not modelled")
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Error("usage not modelled")
	}
}

func TestSimWordProblem(t *testing.T) {
	sim := NewSim(1)
	sim.Noise = Noise{}
	p := directPrompt(t,
		"{{name}} has {{a}} {{item}}. {{name}} buys {{b}} more {{item}} and then gives away {{c}} {{item}}. How many {{item}} does {{name}} have left?",
		map[string]any{"name": "Ada", "a": 12.0, "item": "apples", "b": 7.0, "c": 3.0},
		types.Float)
	resp, err := sim.Complete(context.Background(), Request{Prompt: p, Model: "gpt-4"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := jsonx.ExtractJSON(resp.Text)
	if err != nil {
		t.Fatal(err)
	}
	if v.(map[string]any)["answer"] != 16.0 {
		t.Errorf("answer = %v", v.(map[string]any)["answer"])
	}
}

func TestSimUnknownTask(t *testing.T) {
	sim := NewSim(1)
	p := directPrompt(t, "Translate the Voynich manuscript into {{lang}}.",
		map[string]any{"lang": "English"}, types.Str)
	resp, err := sim.Complete(context.Background(), Request{Prompt: p, Model: "gpt-4"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jsonx.ExtractJSON(resp.Text); err == nil {
		t.Errorf("unknown task should not produce JSON: %q", resp.Text)
	}
}

func TestSimDeterminism(t *testing.T) {
	p := directPrompt(t, "Reverse the string {{s}}.", map[string]any{"s": "determinism"}, types.Str)
	a, _ := NewSim(7).Complete(context.Background(), Request{Prompt: p})
	b, _ := NewSim(7).Complete(context.Background(), Request{Prompt: p})
	if a.Text != b.Text {
		t.Error("same seed+prompt must give identical responses")
	}
	c, _ := NewSim(8).Complete(context.Background(), Request{Prompt: p + " "})
	_ = c // different prompt may differ; no assertion needed
}

func TestSimCodegen(t *testing.T) {
	sim := NewSim(1)
	sim.Noise = Noise{}
	spec := prompt.CodegenSpec{
		FuncName: "calculateFactorial",
		Template: template.MustParse("Calculate the factorial of {{n}}."),
		Params:   []types.Field{{Name: "n", Type: types.Float}},
		Return:   types.Float,
	}
	p, err := prompt.BuildCodegen(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := sim.Complete(context.Background(), Request{Prompt: p, Model: "gpt-3.5-turbo-16k"})
	if err != nil {
		t.Fatal(err)
	}
	code, err := jsonx.ExtractBlock(resp.Text, "typescript", true)
	if err != nil {
		t.Fatalf("no code block in %q", resp.Text)
	}
	cf, err := minilang.CompileFunction(code, "calculateFactorial")
	if err != nil {
		t.Fatalf("generated code does not compile: %v\n%s", err, code)
	}
	v, err := cf.Call(context.Background(), map[string]any{"n": 5})
	if err != nil {
		t.Fatal(err)
	}
	if v != 120.0 {
		t.Errorf("factorial(5) = %v", v)
	}
}

func TestParseCodegenPrompt(t *testing.T) {
	spec := prompt.CodegenSpec{
		FuncName: "sortNumbers",
		Template: template.MustParse("Sort the numbers {{ns}} in ascending order."),
		Params:   []types.Field{{Name: "ns", Type: types.List(types.Float)}},
		Return:   types.List(types.Float),
	}
	p, err := prompt.BuildCodegen(spec)
	if err != nil {
		t.Fatal(err)
	}
	task, ok := ParseCodegenPrompt(p)
	if !ok {
		t.Fatalf("parse failed:\n%s", p)
	}
	if task.Name != "sortNumbers" {
		t.Errorf("name = %q", task.Name)
	}
	if task.Task != "Sort the numbers 'ns' in ascending order." {
		t.Errorf("task = %q", task.Task)
	}
	if len(task.Params) != 1 || task.Params[0].Type.TS() != "number[]" {
		t.Errorf("params = %+v", task.Params)
	}
	if task.Return.TS() != "number[]" {
		t.Errorf("return = %s", task.Return.TS())
	}
}

func TestMutateSourceChangesSemantics(t *testing.T) {
	src := `export function f({n}: {n: number}): number {
  let result = 1;
  for (let i = 2; i <= n; i++) {
    result *= i;
  }
  return result;
}`
	mutated, changed := MutateSource(src)
	if !changed {
		t.Fatal("no mutation applied")
	}
	if mutated == src {
		t.Fatal("mutation did not change source")
	}
	if _, err := minilang.Parse(mutated); err != nil {
		t.Fatalf("mutated source does not parse: %v\n%s", err, mutated)
	}
	a, err := minilang.CompileFunction(src, "f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := minilang.CompileFunction(mutated, "f")
	if err != nil {
		t.Fatal(err)
	}
	va, _ := a.Call(context.Background(), map[string]any{"n": 6})
	vb, _ := b.Call(context.Background(), map[string]any{"n": 6})
	if va == vb {
		t.Errorf("mutation preserved behaviour: %v == %v", va, vb)
	}
}

func TestNoiseProducesFailuresAndRecovery(t *testing.T) {
	// With aggressive noise, some responses must be malformed; with a
	// feedback prompt, the compliance divisor makes recovery likely.
	sim := NewSim(99)
	sim.Noise = Noise{NoJSON: 0.5}
	p := directPrompt(t, "Reverse the string {{s}}.", map[string]any{"s": "x"}, types.Str)
	fails := 0
	for i := 0; i < 40; i++ {
		// Vary the prompt to draw fresh noise.
		resp, err := sim.Complete(context.Background(), Request{Prompt: p + strings.Repeat(" ", i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jsonx.ExtractJSON(resp.Text); err != nil {
			fails++
		}
	}
	if fails == 0 {
		t.Error("expected some corrupted responses at 50% noise")
	}
	if fails == 40 {
		t.Error("expected some clean responses at 50% noise")
	}
}

func TestStatsAccounting(t *testing.T) {
	sim := NewSim(1)
	sim.Noise = Noise{}
	p := directPrompt(t, "Reverse the string {{s}}.", map[string]any{"s": "x"}, types.Str)
	for i := 0; i < 3; i++ {
		if _, err := sim.Complete(context.Background(), Request{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	st := sim.Stats()
	if st.Calls != 3 || st.Direct != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.TokensIn == 0 || st.TokensOut == 0 {
		t.Errorf("token accounting missing: %+v", st)
	}
}

func TestModelClockOrdering(t *testing.T) {
	g4 := ModelClock("gpt-4").Latency(100, 100)
	g35 := ModelClock("gpt-3.5-turbo-16k").Latency(100, 100)
	if g4 <= g35 {
		t.Errorf("gpt-4 should be slower: %v vs %v", g4, g35)
	}
}

func TestContextCancellation(t *testing.T) {
	sim := NewSim(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Complete(ctx, Request{Prompt: "x"}); err == nil {
		t.Error("expected context error")
	}
}

func TestParseWhereClauseEdgeCases(t *testing.T) {
	args, ok := parseWhereClause(`'s' = "a, b = c", 'n' = -3.5, 'flag' = true, 'xs' = [1, [2]], 'o' = {"k": "v"}`)
	if !ok {
		t.Fatal("parse failed")
	}
	if args["s"] != "a, b = c" || args["n"] != -3.5 || args["flag"] != true {
		t.Errorf("args = %#v", args)
	}
	if _, ok := args["xs"].([]any); !ok {
		t.Errorf("xs = %#v", args["xs"])
	}
	if _, ok := args["o"].(map[string]any); !ok {
		t.Errorf("o = %#v", args["o"])
	}
}

func BenchmarkSimDirect(b *testing.B) {
	sim := NewSim(1)
	p, err := prompt.BuildDirect(prompt.DirectSpec{
		Template: template.MustParse("Reverse the string {{s}}."),
		Args:     map[string]any{"s": "benchmark"},
		Return:   types.Str,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Complete(context.Background(), Request{Prompt: p}); err != nil {
			b.Fatal(err)
		}
	}
}
