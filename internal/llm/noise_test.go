package llm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/jsonx"
	"repro/internal/prompt"
	"repro/internal/template"
	"repro/internal/types"
)

// buildPrompt builds a direct prompt for the reverse-string task.
func buildPrompt(t testing.TB, s string) string {
	t.Helper()
	p, err := prompt.BuildDirect(prompt.DirectSpec{
		Template: template.MustParse("Reverse the string {{s}}."),
		Args:     map[string]any{"s": s},
		Return:   types.Str,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNoisePathsRemainExtractable verifies that the "robustness" noise
// modes (lenient JSON, extra prose) still yield extractable, correct
// answers, while the failure modes do not.
func TestNoisePathsRemainExtractable(t *testing.T) {
	robust := []Noise{
		{LenientJSON: 1},
		{ExtraProse: 1},
	}
	for _, n := range robust {
		sim := NewSim(3)
		sim.Noise = n
		resp, err := sim.Complete(context.Background(), Request{Prompt: buildPrompt(t, "abc")})
		if err != nil {
			t.Fatal(err)
		}
		v, err := jsonx.ExtractJSON(resp.Text)
		if err != nil {
			t.Errorf("noise %+v: extraction failed on %q", n, resp.Text)
			continue
		}
		obj, ok := v.(map[string]any)
		if !ok || obj["answer"] != "cba" {
			t.Errorf("noise %+v: answer = %v", n, v)
		}
	}
	failing := []struct {
		n    Noise
		kind string
	}{
		{Noise{NoJSON: 1}, "no-json"},
		{Noise{WrongField: 1}, "wrong-field"},
		{Noise{TypeMismatch: 1}, "type-mismatch"},
	}
	for _, c := range failing {
		sim := NewSim(3)
		sim.Noise = c.n
		resp, err := sim.Complete(context.Background(), Request{Prompt: buildPrompt(t, "abc")})
		if err != nil {
			t.Fatal(err)
		}
		v, err := jsonx.ExtractJSON(resp.Text)
		switch c.kind {
		case "no-json":
			if err == nil {
				t.Errorf("NoJSON noise still produced JSON: %q", resp.Text)
			}
		case "wrong-field":
			if err != nil {
				t.Fatalf("wrong-field should still be JSON: %v", err)
			}
			if _, has := v.(map[string]any)["answer"]; has {
				t.Error("WrongField noise kept the answer field")
			}
		case "type-mismatch":
			if err != nil {
				t.Fatalf("type-mismatch should still be JSON: %v", err)
			}
			if types.Str.Validate(v.(map[string]any)["answer"]) == nil &&
				v.(map[string]any)["answer"] == "cba" {
				t.Error("TypeMismatch noise kept a well-typed correct answer")
			}
		}
	}
}

func TestBlindSpotsAreStableAcrossRetries(t *testing.T) {
	sim := NewSim(42)
	sim.Noise = Noise{DirectBlind: 1}
	p := buildPrompt(t, "stable")
	for attempt := 0; attempt < 3; attempt++ {
		cur := p
		if attempt > 0 {
			cur = prompt.BuildFeedback(p, "previous", prompt.Problem{Kind: "no-json"}, types.Str)
		}
		resp, err := sim.Complete(context.Background(), Request{Prompt: cur, Temperature: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jsonx.ExtractJSON(resp.Text); err == nil {
			t.Fatalf("attempt %d: blind task produced an answer: %q", attempt, resp.Text)
		}
	}
}

func TestBlindFractionApproximatesRate(t *testing.T) {
	sim := NewSim(1)
	sim.Noise = Noise{DirectBlind: 0.12}
	blind := 0
	const n = 300
	for i := 0; i < n; i++ {
		p := buildPrompt(t, strings.Repeat("x", i+1))
		resp, err := sim.Complete(context.Background(), Request{Prompt: p})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jsonx.ExtractJSON(resp.Text); err != nil {
			blind++
		}
	}
	rate := float64(blind) / n
	if rate < 0.05 || rate > 0.22 {
		t.Errorf("blind rate = %.2f, want near 0.12", rate)
	}
}

func TestTemperatureZeroIsIdempotent(t *testing.T) {
	sim := NewSim(9)
	p := buildPrompt(t, "idem")
	a, err := sim.Complete(context.Background(), Request{Prompt: p, Temperature: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Complete(context.Background(), Request{Prompt: p, Temperature: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Error("temperature 0 must repeat the same completion")
	}
}

func TestTemperatureSamplingVariesRetries(t *testing.T) {
	sim := NewSim(9)
	sim.Noise = Noise{ExtraProse: 0.5}
	p := buildPrompt(t, "vary")
	texts := map[string]bool{}
	for i := 0; i < 8; i++ {
		resp, err := sim.Complete(context.Background(), Request{Prompt: p, Temperature: 1})
		if err != nil {
			t.Fatal(err)
		}
		texts[resp.Text] = true
	}
	if len(texts) < 2 {
		t.Error("temperature 1 should vary repeated completions")
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty")
	}
	if CountTokens("abc") != 1 {
		t.Error("short")
	}
	if got := CountTokens(strings.Repeat("a", 400)); got != 100 {
		t.Errorf("400 chars = %d tokens", got)
	}
}

func TestSolveSentiment(t *testing.T) {
	cases := map[string]string{
		"The product is fantastic. It exceeds all my expectations.": "positive",
		"Terrible quality, it broke after one day.":                 "negative",
		"It arrived on time.":                                       "positive", // neutral defaults positive
	}
	for review, want := range cases {
		got, ok := SolveSentiment("What is the sentiment of 'review'?",
			map[string]any{"review": review})
		if !ok || got != want {
			t.Errorf("sentiment(%q) = %v (%v), want %v", review, got, ok, want)
		}
	}
	if _, ok := SolveSentiment("Compute the orbit of 'planet'.", map[string]any{"planet": "Mars"}); ok {
		t.Error("unrelated task matched the sentiment skill")
	}
}
