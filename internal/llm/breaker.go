package llm

import (
	"sync"
	"time"
)

// Breaker defaults (RouterOptions zero values).
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerOpenFor   = time.Second
)

// breakerState is the classic three-state circuit breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-backend circuit breaker. Closed passes traffic and
// counts consecutive failures; at the threshold it opens and the router
// skips the backend, shedding load off a dying upstream instead of
// feeding it retries. After openFor it half-opens: exactly one probe
// request is admitted, and its outcome decides — success closes the
// breaker, failure re-opens it for another openFor. Cancellation is
// never an outcome: a caller hanging up says nothing about the backend.
//
// A nil *breaker is a disabled breaker: every method short-circuits to
// the pass-through behavior.
type breaker struct {
	threshold int
	openFor   time.Duration
	// notify, when non-nil, receives state-transition announcements
	// ("open", "closed") for the event trail. Set once at construction
	// time, before any traffic; called with mu held (the callback must
	// not re-enter the breaker).
	notify func(to string)

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    uint64
}

func newBreaker(threshold int, openFor time.Duration) *breaker {
	if threshold < 0 {
		return nil // disabled
	}
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if openFor <= 0 {
		openFor = DefaultBreakerOpenFor
	}
	return &breaker{threshold: threshold, openFor: openFor}
}

// allow reports whether a request may hit the backend right now. probe
// is true when the request was admitted as the single half-open probe;
// the caller must settle it with onResult or, if it never reaches the
// backend (e.g. the concurrency slot was unavailable), cancelProbe.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.openFor {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// cancelProbe returns an unused half-open probe slot.
func (b *breaker) cancelProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// onResult records a request outcome. Cancellation outcomes must not be
// reported (the router filters them before calling).
func (b *breaker) onResult(now time.Time, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		// Any success — probe or a straggler admitted before the open —
		// proves the backend serves again.
		if b.state != breakerClosed && b.notify != nil {
			b.notify("closed")
		}
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		b.probing = false
		if b.notify != nil {
			b.notify("open")
		}
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
			if b.notify != nil {
				b.notify("open")
			}
		}
	case breakerOpen:
		// A straggler admitted before the trip failed too; the clock is
		// deliberately not refreshed — recovery probes stay on schedule.
	}
}

// openCount returns the open-transition count, for the registry's
// per-backend breaker counter.
func (b *breaker) openCount() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// snapshot returns the displayed state ("off" when disabled) and the
// open-transition count.
func (b *breaker) snapshot(now time.Time) (state string, opens uint64) {
	if b == nil {
		return "off", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state
	if s == breakerOpen && now.Sub(b.openedAt) >= b.openFor {
		// Cosmetic: an open breaker past its cooldown would half-open on
		// the next request; report it that way so operators reading
		// Stats during a quiet period see "ready to probe", not "open".
		s = breakerHalfOpen
	}
	return s.String(), b.opens
}
