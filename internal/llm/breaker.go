package llm

import (
	"sync"
	"time"
)

// Breaker defaults (RouterOptions zero values).
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerOpenFor   = time.Second
)

// breakerState is the classic three-state circuit breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-upstream circuit breaker, shared by the LLM router
// (per backend) and the HTTP gateway (per replica). Closed passes
// traffic and counts consecutive failures; at the threshold it opens
// and the caller skips the upstream, shedding load off a dying target
// instead of feeding it retries. After openFor it half-opens: exactly one probe
// request is admitted, and its outcome decides — success closes the
// breaker, failure re-opens it for another openFor. Cancellation is
// never an outcome: a caller hanging up says nothing about the backend.
//
// A nil *Breaker is a disabled breaker: every method short-circuits to
// the pass-through behavior.
type Breaker struct {
	threshold int
	openFor   time.Duration
	// notify, when non-nil, receives state-transition announcements
	// ("open", "closed") for the event trail. Set via SetNotify before
	// any traffic; called with mu held (the callback must not re-enter
	// the breaker).
	notify func(to string)

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    uint64
}

// NewBreaker returns a Breaker. threshold 0 means
// DefaultBreakerThreshold and openFor 0 means DefaultBreakerOpenFor; a
// negative threshold returns nil — the disabled breaker.
func NewBreaker(threshold int, openFor time.Duration) *Breaker {
	if threshold < 0 {
		return nil // disabled
	}
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if openFor <= 0 {
		openFor = DefaultBreakerOpenFor
	}
	return &Breaker{threshold: threshold, openFor: openFor}
}

// SetNotify installs the state-transition callback ("open",
// "closed"). Call once, before the breaker sees traffic; the callback
// runs with the breaker's lock held and must not re-enter it.
func (b *Breaker) SetNotify(fn func(to string)) {
	if b != nil {
		b.notify = fn
	}
}

// Allow reports whether a request may hit the upstream right now.
// probe is true when the request was admitted as the single half-open
// probe; the caller must settle it with OnResult or, if it never
// reaches the upstream (e.g. the concurrency slot was unavailable),
// CancelProbe.
func (b *Breaker) Allow(now time.Time) (ok, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.openFor {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// CancelProbe returns an unused half-open probe slot.
func (b *Breaker) CancelProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// OnResult records a request outcome. Cancellation outcomes must not
// be reported (callers filter them first): a caller hanging up says
// nothing about the upstream.
func (b *Breaker) OnResult(now time.Time, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		// Any success — probe or a straggler admitted before the open —
		// proves the backend serves again.
		if b.state != breakerClosed && b.notify != nil {
			b.notify("closed")
		}
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.opens++
		b.probing = false
		if b.notify != nil {
			b.notify("open")
		}
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
			if b.notify != nil {
				b.notify("open")
			}
		}
	case breakerOpen:
		// A straggler admitted before the trip failed too; the clock is
		// deliberately not refreshed — recovery probes stay on schedule.
	}
}

// OpenCount returns the open-transition count, for the registry's
// per-upstream breaker counter.
func (b *Breaker) OpenCount() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Snapshot returns the displayed state ("off" when disabled) and the
// open-transition count.
func (b *Breaker) Snapshot(now time.Time) (state string, opens uint64) {
	if b == nil {
		return "off", 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state
	if s == breakerOpen && now.Sub(b.openedAt) >= b.openFor {
		// Cosmetic: an open breaker past its cooldown would half-open on
		// the next request; report it that way so operators reading
		// Stats during a quiet period see "ready to probe", not "open".
		s = breakerHalfOpen
	}
	return s.String(), b.opens
}
