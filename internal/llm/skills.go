package llm

import (
	"strings"

	"repro/internal/tasks"
	"repro/internal/types"
)

// The default skills adapt the shared task catalogs (internal/tasks) to
// the Sim interfaces. Matching happens on the normalized task phrasing
// recovered from the prompt — the same information a hosted model sees.

// SolveCommonTask answers the 50 common coding tasks and the
// HumanEval-like tasks directly.
func SolveCommonTask(task string, args map[string]any) (any, bool) {
	return solveFromCatalogs(task, args, tasks.Common, tasks.HumanEval)
}

// SolveWordProblem answers GSM8K-style word problems directly.
func SolveWordProblem(task string, args map[string]any) (any, bool) {
	return solveFromCatalogs(task, args, tasks.Word)
}

func solveFromCatalogs(task string, args map[string]any, cats ...*tasks.Catalog) (any, bool) {
	for _, cat := range cats {
		spec, names, ok := cat.Lookup(task)
		if !ok {
			continue
		}
		if !spec.Directly {
			return nil, false
		}
		v, err := spec.SolveNamed(names, args)
		if err != nil {
			return nil, false
		}
		return v, true
	}
	return nil, false
}

// SynthesizeCommonTask writes code for the common and HumanEval-like
// catalogs.
func SynthesizeCommonTask(t CodegenTask) (string, bool) {
	return synthFromCatalogs(t, tasks.Common, tasks.HumanEval)
}

// SynthesizeWordProblem writes straight-line arithmetic code for word
// problems.
func SynthesizeWordProblem(t CodegenTask) (string, bool) {
	return synthFromCatalogs(t, tasks.Word)
}

func synthFromCatalogs(t CodegenTask, cats ...*tasks.Catalog) (string, bool) {
	for _, cat := range cats {
		spec, names, ok := cat.Lookup(t.Task)
		if !ok {
			continue
		}
		if !spec.Codable || spec.Hard || len(names) != len(spec.Params) {
			continue
		}
		return spec.Source(t.Name, names), true
	}
	return "", false
}

// SolveSentiment handles the paper's motivating example (§II-A1):
// sentiment classification of a product review. A lexicon stands in for
// the language model's judgement — the path through prompt, envelope,
// union-type validation and decoding is identical either way.
func SolveSentiment(task string, args map[string]any) (any, bool) {
	key, names := tasks.NormalizeTask(task)
	switch key {
	case "what is the sentiment of <1>?",
		"determine the sentiment of this review: <1>",
		"determine the sentiment of <1>.",
		"classify the sentiment of the review <1>.":
	default:
		return nil, false
	}
	if len(names) != 1 {
		return nil, false
	}
	review, ok := args[names[0]].(string)
	if !ok {
		return nil, false
	}
	score := 0
	for _, w := range strings.FieldsFunc(strings.ToLower(review), func(r rune) bool {
		return !(r >= 'a' && r <= 'z')
	}) {
		switch w {
		case "fantastic", "great", "excellent", "love", "amazing", "good",
			"wonderful", "exceeds", "perfect", "happy", "best", "superb":
			score++
		case "terrible", "bad", "awful", "broke", "broken", "poor", "hate",
			"disappointing", "worst", "useless", "defective", "refund":
			score--
		}
	}
	if score >= 0 {
		return "positive", true
	}
	return "negative", true
}

// ParamFieldsFromNames builds a types.Field slice for actual parameter
// names using a spec's canonical types; helper shared by datasets.
func ParamFieldsFromNames(spec *tasks.Spec, names []string) []types.Field {
	canonical := spec.ParamTypes()
	out := make([]types.Field, len(names))
	for i, n := range names {
		out[i] = types.Field{Name: n, Type: canonical[i].Type}
	}
	return out
}
