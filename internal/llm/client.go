// Package llm defines the LLM client interface the AskIt engine talks to
// and provides Sim, a deterministic simulated chat model (DESIGN.md
// substitution 1). The paper uses the OpenAI API (gpt-3.5-turbo-16k and
// gpt-4); this reproduction is offline, so Sim stands in: it parses the
// exact prompts the engine generates, solves the embedded task with
// rule-based skills, wraps answers the way chat models do (prose +
// fenced JSON / code blocks), and injects seeded noise so every
// error-handling path of the runtime is exercised. Latency is modelled
// with a virtual token clock calibrated to the paper's reported GPT
// latencies, so the Table III speedup compares the same quantities.
//
// For multi-backend serving, Router composes several Clients behind the
// same interface (round-robin, failover, per-backend bounded
// concurrency), and MarkTransient/IsTransient/IsCancellation classify
// errors so retry loops can tell a retryable backend failure from a
// canceled caller.
package llm

import (
	"context"
	"strings"
	"time"
)

// Request is one completion request.
type Request struct {
	Prompt      string
	Model       string  // e.g. "gpt-4", "gpt-3.5-turbo-16k"
	Temperature float64 // 0..2; the paper uses the default 1.0
}

// Usage reports simulated token accounting.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Response is one completion response.
type Response struct {
	Text  string
	Usage Usage
	// Latency is the simulated wall-clock time a real API call would
	// have taken. Clients accumulate it instead of sleeping, so tests
	// and benches run fast while Table III still reports model-scale
	// latencies.
	Latency time.Duration
}

// Client is the low-level LLM API used by the AskIt engine (paper
// §III-D Step 2, §III-E Step 2).
type Client interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// CountTokens estimates the token count of text with the standard
// ~4-characters-per-token heuristic, counting words and punctuation.
func CountTokens(text string) int {
	n := (len(text) + 3) / 4
	if n == 0 && len(text) > 0 {
		n = 1
	}
	return n
}

// Clock models API latency as base + per-token costs.
type Clock struct {
	Base               time.Duration
	PerPromptToken     time.Duration
	PerCompletionToken time.Duration
}

// Latency computes the simulated latency of a call.
func (c Clock) Latency(promptTokens, completionTokens int) time.Duration {
	return c.Base +
		time.Duration(promptTokens)*c.PerPromptToken +
		time.Duration(completionTokens)*c.PerCompletionToken
}

// ModelClock returns the latency model for a model name. The numbers are
// calibrated so that a GSM8K-style direct answer lands near the paper's
// measured averages (13.28 s for the TypeScript runs on gpt-4; Table III).
func ModelClock(model string) Clock {
	switch {
	case strings.HasPrefix(model, "gpt-4"):
		return Clock{Base: 500 * time.Millisecond, PerPromptToken: 3 * time.Millisecond, PerCompletionToken: 200 * time.Millisecond}
	case strings.HasPrefix(model, "gpt-3.5"):
		return Clock{Base: 250 * time.Millisecond, PerPromptToken: 1 * time.Millisecond, PerCompletionToken: 25 * time.Millisecond}
	default:
		return Clock{Base: 300 * time.Millisecond, PerPromptToken: 1 * time.Millisecond, PerCompletionToken: 40 * time.Millisecond}
	}
}
