package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBreakerTransitions drives one backend through the full circuit:
// closed → open (threshold failures) → fast-fail while open →
// half-open probe failure → re-open → half-open probe success →
// closed.
func TestBreakerTransitions(t *testing.T) {
	f := &fakeBackend{}
	f.fail.Store(2)
	r, err := NewRouterWithOptions(RouterOptions{
		BreakerThreshold: 2,
		BreakerOpenFor:   30 * time.Millisecond,
		HedgeDelay:       -1,
	}, Backend{Name: "only", Client: f})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Two failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := r.Complete(ctx, Request{}); err == nil {
			t.Fatal("expected failure")
		}
	}
	s := r.Stats()
	if got := s.Backends[0].Breaker; got != "open" {
		t.Fatalf("breaker = %q after threshold failures, want open", got)
	}
	if s.Backends[0].BreakerOpens != 1 {
		t.Fatalf("opens = %d, want 1", s.Backends[0].BreakerOpens)
	}

	// While open: fail fast, classified transient, without touching the
	// backend.
	before := f.calls.Load()
	_, err = r.Complete(ctx, Request{})
	if err == nil || !IsTransient(err) {
		t.Fatalf("open-breaker error = %v, want transient", err)
	}
	if f.calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	if s := r.Stats(); s.BreakerFastFails != 1 {
		t.Fatalf("fast-fails = %d, want 1", s.BreakerFastFails)
	}

	// After the open window, the single probe is admitted; it fails, so
	// the breaker re-opens.
	f.fail.Store(1)
	time.Sleep(40 * time.Millisecond)
	if _, err := r.Complete(ctx, Request{}); err == nil {
		t.Fatal("probe should have failed")
	}
	if f.calls.Load() != before+1 {
		t.Fatalf("probe calls = %d, want %d", f.calls.Load(), before+1)
	}
	s = r.Stats()
	if got := s.Backends[0].Breaker; got != "open" {
		t.Fatalf("breaker = %q after failed probe, want open", got)
	}
	if s.Backends[0].BreakerOpens != 2 {
		t.Fatalf("opens = %d, want 2", s.Backends[0].BreakerOpens)
	}

	// Second probe succeeds: the breaker closes and traffic flows.
	time.Sleep(40 * time.Millisecond)
	if _, err := r.Complete(ctx, Request{}); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if got := r.Stats().Backends[0].Breaker; got != "closed" {
		t.Fatalf("breaker = %q after successful probe, want closed", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Complete(ctx, Request{}); err != nil {
			t.Fatalf("post-recovery call %d: %v", i, err)
		}
	}
}

// TestBreakerHalfOpenSingleProbe verifies only one probe is admitted
// per half-open window: a second request while the probe is in flight
// is rejected, not queued behind a possibly-dead backend.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	f := &fakeBackend{block: make(chan struct{})}
	f.fail.Store(1)
	r, err := NewRouterWithOptions(RouterOptions{
		BreakerThreshold: 1,
		BreakerOpenFor:   10 * time.Millisecond,
		HedgeDelay:       -1,
	}, Backend{Client: f})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	close(f.block) // first (failing) call must not hang
	if _, err := r.Complete(ctx, Request{}); err == nil {
		t.Fatal("expected trip failure")
	}
	time.Sleep(20 * time.Millisecond)

	f.block = make(chan struct{}) // hold the probe in flight
	probeDone := make(chan error, 1)
	go func() {
		_, err := r.Complete(ctx, Request{})
		probeDone <- err
	}()
	// Wait for the probe to reach the backend, then a second request
	// must fast-fail instead of becoming probe #2.
	for i := 0; i < 200 && f.active.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	before := f.calls.Load()
	if _, err := r.Complete(ctx, Request{}); err == nil || !IsTransient(err) {
		t.Fatalf("second half-open request = %v, want transient fast-fail", err)
	}
	if f.calls.Load() != before {
		t.Fatal("second request reached the backend during a probe")
	}
	close(f.block)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if got := r.Stats().Backends[0].Breaker; got != "closed" {
		t.Fatalf("breaker = %q after probe success, want closed", got)
	}
}

// TestRouterHedgeWinsAndCancelsLoser verifies the hedge race: a
// straggling primary is overtaken by a hedged attempt on the next
// backend, the caller gets the hedge's answer, and the loser's context
// is canceled so no goroutine (or backend slot) leaks.
func TestRouterHedgeWinsAndCancelsLoser(t *testing.T) {
	slow := &fakeBackend{block: make(chan struct{})} // blocks until ctx cancel
	fast := &fakeBackend{}
	slow.fail.Store(-1 << 30)
	fast.fail.Store(-1 << 30)
	r, err := NewRouterWithOptions(RouterOptions{
		HedgeDelay:       3 * time.Millisecond,
		BreakerThreshold: -1,
	}, Backend{Name: "slow", Client: slow}, Backend{Name: "fast", Client: fast})
	if err != nil {
		t.Fatal(err)
	}
	// First request starts the ring at "slow"; the hedge starts at
	// "fast" and must win.
	resp, err := r.Complete(context.Background(), Request{})
	if err != nil {
		t.Fatalf("hedged request: %v", err)
	}
	if resp.Text != "ok" {
		t.Fatalf("resp = %+v", resp)
	}
	s := r.Stats()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Fatalf("hedges = %d wins = %d, want 1/1", s.Hedges, s.HedgeWins)
	}
	// The loser's context must be canceled promptly — its Complete is
	// blocked on ctx.Done(), so active draining to zero proves both the
	// cancellation and the absence of a leaked goroutine.
	deadline := time.Now().Add(2 * time.Second)
	for slow.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("loser was never canceled (goroutine leak)")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterHedgeDynamicDelayGate verifies dynamic hedging stays off
// below the sample floor: low-traffic routers must behave exactly like
// the unhedged router.
func TestRouterHedgeDynamicDelayGate(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	a.fail.Store(-1 << 30)
	b.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Client: a}, Backend{Client: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultHedgeMinSamples-1; i++ {
		if _, err := r.Complete(context.Background(), Request{}); err != nil {
			t.Fatal(err)
		}
	}
	if d := r.hedgeDelay(); d != 0 {
		t.Fatalf("hedgeDelay = %v below the sample floor, want 0", d)
	}
	if _, err := r.Complete(context.Background(), Request{}); err != nil {
		t.Fatal(err)
	}
	if d := r.hedgeDelay(); d < minHedgeDelay {
		t.Fatalf("hedgeDelay = %v at the sample floor, want >= %v", d, minHedgeDelay)
	}
	if s := r.Stats(); s.Hedges != 0 {
		t.Fatalf("hedges = %d during sub-floor traffic, want 0", s.Hedges)
	}
}

// TestRetryAfterRoundTrip covers the 429-envelope hint plumbing.
func TestRetryAfterRoundTrip(t *testing.T) {
	base := errors.New("rate limited")
	err := WithRetryAfter(base, 250*time.Millisecond)
	if !IsTransient(err) {
		t.Fatal("retry-after error must be transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("retry-after error must unwrap to its cause")
	}
	hint, ok := RetryAfterHint(err)
	if !ok || hint != 250*time.Millisecond {
		t.Fatalf("hint = %v/%v, want 250ms/true", hint, ok)
	}
	if _, ok := RetryAfterHint(MarkTransient(base)); ok {
		t.Fatal("plain transient error must carry no hint")
	}
	if got := WithRetryAfter(nil, time.Second); got != nil {
		t.Fatalf("WithRetryAfter(nil) = %v", got)
	}
	cancel := context.Canceled
	if got := WithRetryAfter(cancel, time.Second); got != cancel {
		t.Fatalf("cancellation must pass through, got %v", got)
	}
}
