package llm

import (
	"context"
	"errors"
)

// TransientError marks a backend failure as retryable: the request was
// well-formed but the backend could not serve it right now (overload,
// connection reset, rate limit). The engine's retry loops consume their
// budget on transient errors; the Router fails them over to the next
// backend. Cancellation errors are never transient.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "llm: transient: " + e.Err.Error() }

func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err so IsTransient reports true. A nil error stays
// nil, a cancellation error is returned unchanged (cancellation is a
// caller decision, not a backend fault), and an already-transient error
// is not double-wrapped.
func MarkTransient(err error) error {
	if err == nil || IsCancellation(err) || IsTransient(err) {
		return err
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsCancellation reports whether err stems from context cancellation or
// deadline expiry — the one error class retry loops must never consume
// budget on: the caller is gone.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
