package llm

import (
	"context"
	"errors"
	"time"
)

// TransientError marks a backend failure as retryable: the request was
// well-formed but the backend could not serve it right now (overload,
// connection reset, rate limit). The engine's retry loops consume their
// budget on transient errors; the Router fails them over to the next
// backend. Cancellation errors are never transient.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "llm: transient: " + e.Err.Error() }

func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err so IsTransient reports true. A nil error stays
// nil, a cancellation error is returned unchanged (cancellation is a
// caller decision, not a backend fault), and an already-transient error
// is not double-wrapped.
func MarkTransient(err error) error {
	if err == nil || IsCancellation(err) || IsTransient(err) {
		return err
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// IsCancellation reports whether err stems from context cancellation or
// deadline expiry — the one error class retry loops must never consume
// budget on: the caller is gone.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RetryAfterError is a transient error carrying the backend's own
// retry hint — the Retry-After of a 429 envelope when askitd (or any
// rate-limiting HTTP backend) is on the other side of a Client, or the
// simulated equivalent from an injected rate-limit fault. Retry loops
// should prefer the hint over their computed backoff: the backend
// knows when its window reopens.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return "llm: retry after " + e.After.String() + ": " + e.Err.Error()
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// WithRetryAfter wraps err with a retry hint and marks it transient
// (a backend telling you when to come back is the definition of a
// retryable failure). Nil and cancellation errors pass through
// unchanged; a non-positive hint degrades to plain MarkTransient.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil || IsCancellation(err) {
		return err
	}
	if after <= 0 {
		return MarkTransient(err)
	}
	return MarkTransient(&RetryAfterError{Err: err, After: after})
}

// RetryAfterHint extracts the backend's retry hint, if err carries one.
func RetryAfterHint(err error) (time.Duration, bool) {
	var re *RetryAfterError
	if errors.As(err, &re) && re.After > 0 {
		return re.After, true
	}
	return 0, false
}
