package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a scriptable Client that records traffic and can track
// its maximum observed concurrency.
type fakeBackend struct {
	fail    atomic.Int64 // fail the next N calls with a transient error
	calls   atomic.Int64
	active  atomic.Int64
	maxSeen atomic.Int64
	block   chan struct{} // when non-nil, calls wait here
}

func (f *fakeBackend) Complete(ctx context.Context, req Request) (Response, error) {
	f.calls.Add(1)
	cur := f.active.Add(1)
	defer f.active.Add(-1)
	for {
		prev := f.maxSeen.Load()
		if cur <= prev || f.maxSeen.CompareAndSwap(prev, cur) {
			break
		}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	if f.fail.Add(-1) >= 0 {
		return Response{}, MarkTransient(errors.New("backend overloaded"))
	}
	return Response{Text: "ok"}, nil
}

func TestRouterRoundRobinSpreadsLoad(t *testing.T) {
	a, b, c := &fakeBackend{}, &fakeBackend{}, &fakeBackend{}
	a.fail.Store(-1 << 30)
	b.fail.Store(-1 << 30)
	c.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Client: a}, Backend{Client: b}, Backend{Client: c})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Complete(context.Background(), Request{}); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range []*fakeBackend{a, b, c} {
		if got := f.calls.Load(); got != 10 {
			t.Errorf("backend %d served %d calls, want 10", i, got)
		}
	}
	if s := r.Stats(); s.Requests != 30 || s.Failovers != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRouterFailsOverOnTransientError(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	a.fail.Store(1 << 30) // a always fails
	b.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Name: "bad", Client: a}, Backend{Name: "good", Client: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		resp, err := r.Complete(context.Background(), Request{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Text != "ok" {
			t.Fatalf("resp = %+v", resp)
		}
	}
	s := r.Stats()
	if s.Failovers != 5 {
		t.Errorf("failovers = %d, want 5 (every request starting at 'bad')", s.Failovers)
	}
	if b.calls.Load() != 10 {
		t.Errorf("good backend served %d, want 10", b.calls.Load())
	}
}

func TestRouterAllBackendsFailedIsTransient(t *testing.T) {
	a, b := &fakeBackend{}, &fakeBackend{}
	a.fail.Store(1 << 30)
	b.fail.Store(1 << 30)
	r, err := NewRouter(Backend{Client: a}, Backend{Client: b})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Complete(context.Background(), Request{})
	if err == nil {
		t.Fatal("expected error")
	}
	if !IsTransient(err) {
		t.Errorf("exhausted-router error must be transient, got %v", err)
	}
	if s := r.Stats(); s.Exhausted != 1 {
		t.Errorf("exhausted = %d", s.Exhausted)
	}
}

func TestRouterCancellationAbortsWithoutFailover(t *testing.T) {
	a := &fakeBackend{block: make(chan struct{})}
	b := &fakeBackend{}
	b.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Client: a}, Backend{Client: b})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Complete(ctx, Request{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !IsCancellation(err) {
			t.Errorf("err = %v, want cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("router did not observe cancellation")
	}
	if b.calls.Load() != 0 {
		t.Error("cancellation must not fail over to the next backend")
	}
	if s := r.Stats(); s.Failovers != 0 {
		t.Errorf("failovers = %d, want 0", s.Failovers)
	}
}

func TestRouterBoundsPerBackendConcurrency(t *testing.T) {
	f := &fakeBackend{block: make(chan struct{})}
	f.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Client: f, MaxConcurrent: 3})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Complete(context.Background(), Request{}); err != nil {
				t.Error(err)
			}
		}()
	}
	// Let callers pile up against the semaphore, then drain.
	time.Sleep(20 * time.Millisecond)
	close(f.block)
	wg.Wait()
	if got := f.maxSeen.Load(); got > 3 {
		t.Errorf("observed %d concurrent calls, bound is 3", got)
	}
	if f.calls.Load() != callers {
		t.Errorf("served %d calls, want %d", f.calls.Load(), callers)
	}
}

func TestRouterSkipsSaturatedBackendForIdleOne(t *testing.T) {
	// Backend a is bounded at 1 and wedged by an in-flight call; b is
	// idle. A request whose round-robin start lands on a must not block
	// on a's semaphore — it must fail over to b immediately.
	a := &fakeBackend{block: make(chan struct{})}
	b := &fakeBackend{}
	a.fail.Store(-1 << 30)
	b.fail.Store(-1 << 30)
	r, err := NewRouter(
		Backend{Name: "wedged", Client: a, MaxConcurrent: 1},
		Backend{Name: "idle", Client: b},
	)
	if err != nil {
		t.Fatal(err)
	}

	// Request 1 (start index 0) occupies a's only slot and blocks.
	occupied := make(chan struct{})
	go func() {
		close(occupied)
		r.Complete(context.Background(), Request{})
	}()
	<-occupied
	for a.active.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Request 2 (start index 1) goes to b directly; request 3 (start
	// index 0 again) finds a saturated and must skip to b without
	// blocking. Before the try-acquire walk, it would hang here until
	// a's call finished.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := r.Complete(context.Background(), Request{})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("request failed: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("request blocked on a saturated backend with an idle one in the ring")
		}
	}
	if got := b.calls.Load(); got != 2 {
		t.Errorf("idle backend served %d calls, want 2", got)
	}
	s := r.Stats()
	if s.SaturationSkips == 0 {
		t.Error("saturation skip not counted")
	}
	close(a.block)
}

func TestRouterBlocksOnlyWhenAllBackendsSaturated(t *testing.T) {
	// Both backends bounded at 1 and wedged: a new request has nowhere
	// to go and must block (pass 2), then complete once a slot frees.
	a := &fakeBackend{block: make(chan struct{})}
	b := &fakeBackend{block: make(chan struct{})}
	a.fail.Store(-1 << 30)
	b.fail.Store(-1 << 30)
	r, err := NewRouter(
		Backend{Client: a, MaxConcurrent: 1},
		Backend{Client: b, MaxConcurrent: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Complete(context.Background(), Request{})
		}()
	}
	for a.active.Load() == 0 || b.active.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Complete(context.Background(), Request{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request completed with all backends saturated: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(a.block)
	close(b.block)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("queued request failed after slots freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never ran after slots freed")
	}
	wg.Wait()
}

func TestRouterSaturatedBlockingRespectsCancellation(t *testing.T) {
	a := &fakeBackend{block: make(chan struct{})}
	a.fail.Store(-1 << 30)
	r, err := NewRouter(Backend{Client: a, MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	go r.Complete(context.Background(), Request{})
	for a.active.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Complete(ctx, Request{})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !IsCancellation(err) {
			t.Errorf("err = %v, want cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked caller did not observe cancellation")
	}
	close(a.block)
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(); err == nil {
		t.Error("empty router must be rejected")
	}
	if _, err := NewRouter(Backend{}); err == nil {
		t.Error("nil client must be rejected")
	}
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		err       error
		transient bool
		cancel    bool
	}{
		{nil, false, false},
		{base, false, false},
		{MarkTransient(base), true, false},
		{fmt.Errorf("wrapped: %w", MarkTransient(base)), true, false},
		{context.Canceled, false, true},
		{context.DeadlineExceeded, false, true},
		{fmt.Errorf("rpc: %w", context.Canceled), false, true},
	}
	for i, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("case %d: IsTransient = %v, want %v", i, got, c.transient)
		}
		if got := IsCancellation(c.err); got != c.cancel {
			t.Errorf("case %d: IsCancellation = %v, want %v", i, got, c.cancel)
		}
	}
	// Cancellation is never marked transient, and transient errors are
	// not double-wrapped.
	if MarkTransient(context.Canceled) != context.Canceled {
		t.Error("cancellation must not be marked transient")
	}
	te := MarkTransient(base)
	if MarkTransient(te) != te {
		t.Error("transient error double-wrapped")
	}
}
