package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"repro/internal/jsonx"
	"repro/internal/minilang"
	"repro/internal/types"
)

// SolverFunc attempts to answer a directly answerable task. task is the
// quoted task line ("List 'n' classic books on 'subject'."), args are the
// bound argument values from the where clause. It returns the answer in
// the JSON data model and whether it recognized the task.
type SolverFunc func(task string, args map[string]any) (any, bool)

// CodegenTask describes a function-synthesis request parsed from a
// Figure 4 prompt.
type CodegenTask struct {
	Name   string
	Params []types.Field
	Return types.Type
	Task   string // the body comment, i.e. the quoted prompt template
}

// SynthFunc attempts to write minilang source implementing a codegen
// task. It returns the full source (an exported function named
// task.Name) and whether it recognized the task.
type SynthFunc func(task CodegenTask) (string, bool)

// Noise configures the probability of each corruption the simulated
// model applies to otherwise correct responses. All values are in [0, 1]
// and are sampled independently in the order of the struct fields; the
// first hit wins.
type Noise struct {
	// NoJSON answers in plain prose with no code block (direct mode) or
	// emits code without fences (codegen mode).
	NoJSON float64
	// WrongField emits {"reason", "result"} instead of "answer".
	WrongField float64
	// TypeMismatch stringifies the answer value.
	TypeMismatch float64
	// LenientJSON uses single quotes and trailing commas; the lenient
	// parser should still accept it (a robustness, not a failure, path).
	LenientJSON float64
	// ExtraProse wraps the valid payload in extra chatter.
	ExtraProse float64
	// BuggyCode mutates generated code so example tests fail.
	BuggyCode float64
	// FeedbackCompliance divides all probabilities on retry (feedback)
	// prompts; 0 means the default of 4.
	FeedbackCompliance float64
	// DirectBlind is the fraction of tasks the model consistently
	// cannot answer directly (stable per task text; retries never
	// help). It reproduces GPT-4 solving only 1138/1319 GSM8K problems
	// (paper Table III).
	DirectBlind float64
	// CodegenBlind is the fraction of tasks the model consistently
	// cannot implement as code, independent of DirectBlind (paper:
	// 1114 of 1138 programs generated).
	CodegenBlind float64
}

// DefaultNoise reflects roughly how often chat models deviate from the
// requested format; it makes a handful of the paper's 50 tasks take >0
// retries, matching Table II.
func DefaultNoise() Noise {
	return Noise{
		NoJSON:       0.04,
		WrongField:   0.04,
		TypeMismatch: 0.05,
		LenientJSON:  0.08,
		ExtraProse:   0.25,
		BuggyCode:    0.08,
		DirectBlind:  0.12,
		CodegenBlind: 0.02,
	}
}

// Stats counts what the simulated model has served.
type Stats struct {
	Calls     int
	Direct    int
	Codegen   int
	Unknown   int
	Corrupted int
	Feedback  int
	TokensIn  int
	TokensOut int
}

// Sim is the deterministic simulated LLM.
type Sim struct {
	// Seed drives all noise decisions; identical (seed, prompt) pairs
	// always produce identical responses.
	Seed int64
	// Noise is the corruption model; zero value means no corruption.
	Noise Noise
	// Clock overrides the per-model latency model when non-zero.
	Clock *Clock

	mu      sync.Mutex
	solvers []SolverFunc
	synths  []SynthFunc
	stats   Stats
	seen    map[uint64]int
}

// NewSim returns a simulated model with the default skills registered
// and the default noise model.
func NewSim(seed int64) *Sim {
	s := &Sim{Seed: seed, Noise: DefaultNoise()}
	s.RegisterSolver(SolveCommonTask)
	s.RegisterSolver(SolveWordProblem)
	s.RegisterSolver(SolveSentiment)
	s.RegisterSynth(SynthesizeCommonTask)
	s.RegisterSynth(SynthesizeWordProblem)
	return s
}

// RegisterSolver appends a direct-answer skill; earlier solvers win.
func (s *Sim) RegisterSolver(f SolverFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.solvers = append(s.solvers, f)
}

// RegisterSynth appends a code-synthesis skill; earlier synths win.
func (s *Sim) RegisterSynth(f SynthFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synths = append(s.synths, f)
}

// Stats returns a snapshot of the usage counters.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

var _ Client = (*Sim)(nil)

// Complete implements Client.
func (s *Sim) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	feedback := strings.Contains(req.Prompt, "Your previous response was:")
	basePrompt := req.Prompt
	if feedback {
		basePrompt = req.Prompt[:strings.Index(req.Prompt, "Your previous response was:")]
	}
	// Temperature-1.0 sampling is modelled by folding the number of
	// times this exact prompt has been seen into the noise seed: a
	// retried prompt draws fresh noise (paper §III-D: "we seek a
	// certain level of randomness ... to ensure a unique response for
	// each retry"), while a whole run stays reproducible.
	s.mu.Lock()
	if s.seen == nil {
		s.seen = map[uint64]int{}
	}
	ph := promptHash(req.Prompt)
	occurrence := s.seen[ph]
	if req.Temperature > 0 {
		s.seen[ph]++
	}
	s.mu.Unlock()
	rng := newRNG(s.Seed+int64(occurrence)*1_000_003, req.Prompt)
	noise := s.Noise
	if feedback {
		div := noise.FeedbackCompliance
		if div <= 0 {
			div = 4
		}
		noise = Noise{
			NoJSON:       noise.NoJSON / div,
			WrongField:   noise.WrongField / div,
			TypeMismatch: noise.TypeMismatch / div,
			LenientJSON:  noise.LenientJSON,
			ExtraProse:   noise.ExtraProse,
			BuggyCode:    noise.BuggyCode / div,
			// Capability limits are not sampling noise: feedback never
			// cures a blind spot.
			DirectBlind:  noise.DirectBlind,
			CodegenBlind: noise.CodegenBlind,
		}
	}

	var text string
	var kind string
	switch {
	case strings.Contains(basePrompt, "Q: Implement the following function:"):
		text, kind = s.completeCodegen(basePrompt, rng, noise)
	case strings.Contains(basePrompt, "generates responses in JSON format"):
		text, kind = s.completeDirect(basePrompt, rng, noise)
	default:
		text, kind = "I'm not sure how to help with that request.", "unknown"
	}

	in := CountTokens(req.Prompt)
	out := CountTokens(text)
	clock := ModelClock(req.Model)
	if s.Clock != nil {
		clock = *s.Clock
	}

	s.mu.Lock()
	s.stats.Calls++
	s.stats.TokensIn += in
	s.stats.TokensOut += out
	if feedback {
		s.stats.Feedback++
	}
	switch kind {
	case "direct":
		s.stats.Direct++
	case "codegen":
		s.stats.Codegen++
	case "corrupted-direct":
		s.stats.Direct++
		s.stats.Corrupted++
	case "corrupted-codegen":
		s.stats.Codegen++
		s.stats.Corrupted++
	default:
		s.stats.Unknown++
	}
	s.mu.Unlock()

	return Response{
		Text:    text,
		Usage:   Usage{PromptTokens: in, CompletionTokens: out},
		Latency: clock.Latency(in, out),
	}, nil
}

// ---------------------------------------------------------------------------
// Direct-answer completion

func (s *Sim) completeDirect(prompt string, rng *rng, noise Noise) (string, string) {
	task, args, ok := ParseDirectPrompt(prompt)
	if !ok {
		return "I could not identify the task in your request.", "unknown"
	}
	// Stable blind spot: keyed by the task text alone (not the retry
	// prompt), so retries never recover — the model simply cannot solve
	// this instance.
	if s.stableHit(noise.DirectBlind, "direct|"+task+argKey(args)) {
		return "I worked through the problem but I am not confident in a final value.", "unknown"
	}
	var answer any
	solved := false
	s.mu.Lock()
	solvers := append([]SolverFunc(nil), s.solvers...)
	s.mu.Unlock()
	for _, f := range solvers {
		if v, hit := f(task, args); hit {
			answer, solved = v, true
			break
		}
	}
	if !solved {
		return "I'm sorry, I cannot determine the answer to this task.", "unknown"
	}
	reason := "Solving step by step: the task asks to " + strings.TrimSuffix(strings.ToLower(firstSentence(task)), ".") + "; computing the result directly."
	payload := map[string]any{"reason": reason, "answer": answer}

	switch {
	case rng.hit(noise.NoJSON):
		return "The answer is " + jsonx.Encode(answer) + ". Let me know if you need anything else!", "corrupted-direct"
	case rng.hit(noise.WrongField):
		bad := map[string]any{"reason": reason, "result": answer}
		return "```json\n" + jsonx.EncodeIndent(bad, "  ") + "\n```\n", "corrupted-direct"
	case rng.hit(noise.TypeMismatch):
		bad := map[string]any{"reason": reason, "answer": jsonx.Encode(answer)}
		if _, isStr := answer.(string); isStr {
			bad["answer"] = map[string]any{"value": answer}
		}
		return "```json\n" + jsonx.EncodeIndent(bad, "  ") + "\n```\n", "corrupted-direct"
	case rng.hit(noise.LenientJSON):
		encoded := jsonx.EncodeIndent(payload, "  ")
		var loose string
		if !strings.Contains(encoded, "'") {
			// Python-style single quotes.
			loose = strings.ReplaceAll(encoded, `"`, `'`)
		} else {
			// Trailing comma flavour instead, so the payload stays
			// parseable under the lenient grammar.
			loose = strings.TrimSuffix(encoded, "\n}") + ",\n}"
		}
		return "Sure! Here is the result:\n```json\n" + loose + "\n```\n", "direct"
	case rng.hit(noise.ExtraProse):
		return "Let me work through this carefully.\n\n" +
			"First, I identify the inputs; then I compute the answer.\n" +
			"```json\n" + jsonx.EncodeIndent(payload, "  ") + "\n```\n" +
			"I hope this helps!", "direct"
	default:
		return "```json\n" + jsonx.EncodeIndent(payload, "  ") + "\n```\n", "direct"
	}
}

// ParseDirectPrompt recovers the task line and bound arguments from a
// Listing 2 prompt. Exported for the engine's tests.
func ParseDirectPrompt(prompt string) (task string, args map[string]any, ok bool) {
	marker := "Explain your answer step-by-step in the 'reason' field.\n"
	i := strings.Index(prompt, marker)
	if i < 0 {
		return "", nil, false
	}
	rest := strings.TrimSpace(prompt[i+len(marker):])
	// Skip an optional Examples: block.
	if strings.HasPrefix(rest, "Examples:") {
		lines := strings.Split(rest, "\n")
		j := 1
		for j < len(lines) && strings.HasPrefix(strings.TrimSpace(lines[j]), "-") {
			j++
		}
		rest = strings.TrimSpace(strings.Join(lines[j:], "\n"))
	}
	args = map[string]any{}
	whereIdx := strings.LastIndex(rest, "\nwhere ")
	if whereIdx < 0 {
		return strings.TrimSpace(rest), args, rest != ""
	}
	task = strings.TrimSpace(rest[:whereIdx])
	clause := strings.TrimSpace(rest[whereIdx+len("\nwhere "):])
	parsed, ok := parseWhereClause(clause)
	if !ok {
		return task, args, false
	}
	return task, parsed, true
}

// parseWhereClause parses "'n' = 5, 'subject' = \"cs\"" into a map.
func parseWhereClause(clause string) (map[string]any, bool) {
	args := map[string]any{}
	i := 0
	for i < len(clause) {
		for i < len(clause) && (clause[i] == ' ' || clause[i] == ',') {
			i++
		}
		if i >= len(clause) {
			break
		}
		if clause[i] != '\'' {
			return nil, false
		}
		end := strings.IndexByte(clause[i+1:], '\'')
		if end < 0 {
			return nil, false
		}
		name := clause[i+1 : i+1+end]
		i += end + 2
		for i < len(clause) && (clause[i] == ' ' || clause[i] == '=') {
			i++
		}
		v, n, err := jsonx.ParsePrefix(clause[i:], jsonx.Lenient)
		if err != nil {
			return nil, false
		}
		args[name] = v
		i += n
	}
	return args, true
}

// ---------------------------------------------------------------------------
// Codegen completion

func (s *Sim) completeCodegen(prompt string, rng *rng, noise Noise) (string, string) {
	task, ok := ParseCodegenPrompt(prompt)
	if !ok {
		return "I could not parse the function you want me to implement.", "unknown"
	}
	if s.stableHit(noise.CodegenBlind, "codegen|"+task.Name+"|"+task.Task) {
		return "I'm sorry, I was not able to produce a working implementation for this function.", "unknown"
	}
	var src string
	solved := false
	s.mu.Lock()
	synths := append([]SynthFunc(nil), s.synths...)
	s.mu.Unlock()
	for _, f := range synths {
		if out, hit := f(task); hit {
			src, solved = out, true
			break
		}
	}
	if !solved {
		return "I'm sorry, I don't know how to implement this function.", "unknown"
	}

	switch {
	case rng.hit(noise.BuggyCode):
		if mutated, changed := MutateSource(src); changed {
			return "A:\n```typescript\n" + mutated + "```\n", "corrupted-codegen"
		}
		return "A:\n```typescript\n" + src + "```\n", "codegen"
	case rng.hit(noise.NoJSON):
		return "A: Here is the implementation:\n\n" + src + "\n", "corrupted-codegen"
	case rng.hit(noise.ExtraProse):
		return "A: Certainly! The function below implements the requested behaviour.\n" +
			"```typescript\n" + src + "```\nFeel free to ask for adjustments.", "codegen"
	default:
		return "A:\n```typescript\n" + src + "```\n", "codegen"
	}
}

// ParseCodegenPrompt extracts the final task of a Figure 4 prompt: the
// function signature (name, parameter types, return type) and the body
// comment describing the task.
func ParseCodegenPrompt(prompt string) (CodegenTask, bool) {
	blocks := jsonx.Blocks(prompt)
	if len(blocks) == 0 {
		return CodegenTask{}, false
	}
	body := blocks[len(blocks)-1].Body
	// The body is an exported function with an empty body and a comment.
	prog, err := minilang.Parse(body)
	if err != nil {
		return CodegenTask{}, false
	}
	funcs := prog.Funcs()
	if len(funcs) != 1 {
		return CodegenTask{}, false
	}
	var fd *minilang.FuncDecl
	for _, f := range funcs {
		fd = f
	}
	task := CodegenTask{Name: fd.Name, Return: fd.ReturnType}
	for _, p := range fd.Params {
		t := p.Type
		if t == nil {
			t = types.Any
		}
		task.Params = append(task.Params, types.Field{Name: p.Name, Type: t})
	}
	if task.Return == nil {
		task.Return = types.Void
	}
	// Extract the comment line textually (the lexer drops comments).
	for _, line := range strings.Split(body, "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "//") {
			task.Task = strings.TrimSpace(strings.TrimPrefix(t, "//"))
			break
		}
	}
	if task.Task == "" {
		return CodegenTask{}, false
	}
	return task, true
}

// MutateSource applies a small semantics-changing, syntax-preserving
// mutation to minilang source, for the BuggyCode noise path. It returns
// the mutated source and whether a usable mutation was found.
func MutateSource(src string) (string, bool) {
	mutations := []struct{ from, to string }{
		{"<=", "<"},
		{">=", ">"},
		{"+ 1", "+ 2"},
		{"- 1", "- 2"},
		{"* i", "* (i + 1)"},
		{"return 1;", "return 2;"},
		{"+", "-"},
	}
	for _, m := range mutations {
		if !strings.Contains(src, m.from) {
			continue
		}
		out := strings.ReplaceAll(src, m.from, m.to)
		if out == src {
			continue
		}
		if _, err := minilang.Parse(out); err != nil {
			continue
		}
		return out, true
	}
	return src, false
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[:i+1]
	}
	return s
}

// ---------------------------------------------------------------------------
// Deterministic RNG

// stableHit draws a deterministic Bernoulli keyed by (seed, key) only —
// unlike the per-response rng it ignores retry counts, modelling
// capability limits rather than sampling noise.
func (s *Sim) stableHit(p float64, key string) bool {
	if p <= 0 {
		return false
	}
	r := newRNG(s.Seed, key)
	return r.hit(p)
}

// argKey folds direct-task argument values into the blind-spot key, so
// different instances of one template fail independently.
func argKey(args map[string]any) string {
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, jsonx.Encode(args[k]))
	}
	return b.String()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func promptHash(prompt string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	return h.Sum64()
}

type rng struct{ state uint64 }

func newRNG(seed int64, prompt string) *rng {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", seed)
	h.Write([]byte(prompt))
	st := h.Sum64()
	if st == 0 {
		st = 0x9E3779B97F4A7C15
	}
	return &rng{state: st}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// hit draws a uniform float in [0,1) and reports whether it is < p.
func (r *rng) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/float64(1<<53) < p
}
