package gateway

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// Read-side endpoints the gateway serves itself rather than proxying:
// its own health and drain state, its own counters, the merged function
// catalog, the Prometheus exposition, and the gateway-side halves of
// retained traces. None of these pass the admission gate — inspecting a
// struggling gateway matters most while it is struggling.

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := g.upCount()
	status, code := "ok", http.StatusOK
	switch {
	case g.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case up == 0:
		// No routable replica: an upstream balancer should pull the
		// gateway until the fleet recovers.
		status, code = "degraded", http.StatusServiceUnavailable
	}
	api.WriteJSON(w, code, api.GatewayHealthResponse{
		Inflight:   g.Inflight(),
		ReplicasUp: up,
		Status:     status,
		UptimeS:    time.Since(g.start).Seconds(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	g.metrics.WritePrometheus(w)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, g.Stats())
}

// handleListFuncs merges GET /v1/funcs across the up replicas: installs
// broadcast to every replica, but a replica that joined late (or missed
// a broadcast) may lag, so the union — first writer wins per name — is
// the fleet's catalog.
func (g *Gateway) handleListFuncs(w http.ResponseWriter, r *http.Request) {
	var reps []*replica
	for _, rep := range g.replicas {
		if rep.available() {
			reps = append(reps, rep)
		}
	}
	if len(reps) == 0 {
		g.noReplica.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable,
			api.Error{Message: "no up replica to take the request", Kind: api.KindNoReplica, Transient: true})
		return
	}
	lists := make([]api.FuncListResponse, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			lists[i], _ = rep.cli.Funcs(r.Context())
		}(i, rep)
	}
	wg.Wait()
	byName := map[string]api.FuncInfo{}
	for _, l := range lists {
		for _, fi := range l.Funcs {
			if _, ok := byName[fi.Name]; !ok {
				byName[fi.Name] = fi
			}
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	funcs := make([]api.FuncInfo, 0, len(names))
	for _, name := range names {
		funcs = append(funcs, byName[name])
	}
	api.WriteJSON(w, http.StatusOK, api.FuncListResponse{Funcs: funcs})
}

// defaultTraceLimit bounds an unqualified /v1/traces listing, matching
// the serving tier.
const defaultTraceLimit = 50

func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if g.tracer == nil {
		api.WriteJSON(w, http.StatusOK, api.TraceListResponse{Enabled: false})
		return
	}
	limit := defaultTraceLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			api.WriteError(w, http.StatusBadRequest,
				api.Error{Message: "limit must be a positive integer", Kind: api.KindBadLimit})
			return
		}
		limit = n
	}
	sums := g.tracer.Summaries(limit)
	if sums == nil {
		sums = []obs.TraceSummary{}
	}
	api.WriteJSON(w, http.StatusOK, api.TraceListResponse{Enabled: true, Traces: sums})
}

func (g *Gateway) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if g.tracer == nil {
		api.WriteJSON(w, http.StatusOK, api.TraceListResponse{Enabled: false})
		return
	}
	id := r.PathValue("id")
	td, ok := g.tracer.Lookup(id)
	if !ok {
		api.WriteError(w, http.StatusNotFound, api.Error{
			Message: "no retained trace with id " + id + " (dropped by the sampler, evicted, or never seen)",
			Kind:    api.KindUnknownTrace,
		})
		return
	}
	api.WriteJSON(w, http.StatusOK, api.TraceResponse{
		TraceID: td.TraceID,
		Route:   td.Route,
		DurUs:   td.DurUs,
		Err:     td.Err,
		Reason:  td.Reason,
		Dropped: td.Dropped,
		Root:    api.SpanTree(td.Spans),
	})
}
