package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"repro/api"
	"repro/internal/llm"
	"repro/internal/obs"
)

// The proxied data path. The gateway forwards the caller's raw bytes —
// it never re-marshals a request or a replica's response, so the wire
// contract the api golden test pins is preserved byte-for-byte through
// the hop. The body is buffered once (bounded, same limit as the
// replicas enforce) because the routing key lives inside it and a retry
// or hedge must be able to replay it.

const (
	// maxBodyBytes matches the replicas' request-body bound.
	maxBodyBytes = 1 << 20
	// maxRelayBytes bounds a buffered replica response; batch responses
	// are the largest legitimate payloads.
	maxRelayBytes = 8 << 20
)

// statusClientClosed is the non-standard 499 the serving tier uses for
// a caller that hung up mid-request.
const statusClientClosed = 499

// errNoReplica means every candidate was down, circuit-open, or failed
// with a retryable outcome and nothing produced an HTTP response worth
// relaying.
var errNoReplica = errors.New("gateway: no replica available")

// keyFunc extracts a request's routing key; "" means no affinity
// (spread like RoutingRandom).
type keyFunc func(r *http.Request, body []byte) string

// askKey keys /v1/ask and /v1/ask/batch by the task spec — repeated
// asks of one template land on one replica, whose answer cache pays.
// A malformed body gets no key; the replica it lands on produces the
// canonical error envelope.
func askKey(r *http.Request, body []byte) string {
	var req api.AskRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	return "spec\x00" + req.Type + "\x00" + req.Template
}

// installKey keys installs by function name when present (so installs
// and calls of one function share a home replica), else by spec.
func installKey(r *http.Request, body []byte) string {
	var req api.InstallRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	if req.Name != "" {
		return "func\x00" + req.Name
	}
	return "spec\x00" + req.Type + "\x00" + req.Template
}

// callKey keys calls by the function name in the path — no body decode
// on the hottest route.
func callKey(r *http.Request, body []byte) string {
	return "func\x00" + r.PathValue("name")
}

// proxyRoute describes one proxied work endpoint.
type proxyRoute struct {
	name string // route label ("ask", "call", ...)
	span string // root span name constant
	// hedge allows duplicate dispatch for stragglers. Only cheap
	// idempotent routes hedge; batches would duplicate whole fan-outs.
	hedge bool
	// broadcast fans a successful body out to every other up replica
	// (installs: the home replica compiles and stores, the others load
	// the shared store's artifact, so any replica can serve the call).
	broadcast bool
	key       keyFunc
}

func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /v1/traces", g.handleTraces)
	g.mux.HandleFunc("GET /v1/traces/{id}", g.handleTraceByID)
	g.mux.HandleFunc("GET /v1/funcs", g.handleListFuncs)
	g.mux.Handle("POST /v1/ask", g.proxy(proxyRoute{name: "ask", span: spanGwAsk, hedge: true, key: askKey}))
	g.mux.Handle("POST /v1/ask/batch", g.proxy(proxyRoute{name: "ask_batch", span: spanGwAskBatch, key: askKey}))
	g.mux.Handle("POST /v1/funcs", g.proxy(proxyRoute{name: "install", span: spanGwInstall, broadcast: true, key: installKey}))
	g.mux.Handle("POST /v1/funcs/{name}/call", g.proxy(proxyRoute{name: "call", span: spanGwCall, hedge: true, key: callKey}))
	g.mux.Handle("POST /v1/funcs/{name}/batch", g.proxy(proxyRoute{name: "call_batch", span: spanGwCallBatch, key: callKey}))
}

// stampInboundTrace echoes a valid inbound traceparent's trace id into
// X-Trace-Id on a request rejected before a root span exists, so the
// error envelope still carries the caller's trace id (api.WriteError
// reads this header). Same rule as the serving tier's admission gate.
func stampInboundTrace(w http.ResponseWriter, r *http.Request) {
	if parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		w.Header().Set("X-Trace-Id", parent.TraceID.String())
	}
}

// proxy wraps one work route with the gateway's admission gate, root
// span, and latency histogram around dispatch.
func (g *Gateway) proxy(pr proxyRoute) http.Handler {
	hist := g.metrics.Histogram("askit_gw_request_duration_seconds",
		obs.Help("Gateway request latency by route."),
		obs.Labels("route", pr.name))
	traceRoute := g.tracer.Route(pr.span)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Same increment-then-check order as the serving tier: every
		// request either sees draining or is visible to Drain's wait.
		g.inflight.Add(1)
		if g.draining.Load() {
			g.exit()
			g.rejectedDraining.Add(1)
			stampInboundTrace(w, r)
			api.WriteError(w, http.StatusServiceUnavailable,
				api.Error{Message: "gateway is draining", Kind: api.KindDraining, Transient: true})
			return
		}
		defer g.exit()
		g.requests.Add(1)

		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			api.WriteError(w, http.StatusBadRequest,
				api.Error{Message: "unreadable or oversized request body", Kind: api.KindBadJSON})
			return
		}

		ctx := r.Context()
		if g.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.cfg.RequestTimeout)
			defer cancel()
		}
		var span *obs.Span
		if traceRoute != nil {
			parent, joined := obs.ParseTraceparent(r.Header.Get("traceparent"))
			ctx, span = traceRoute.StartRoot(ctx, parent)
			if joined || span.Sampled() {
				tid, _ := span.TraceContext()
				w.Header().Set("X-Trace-Id", tid.String())
			}
		}
		t0 := time.Now()
		code := g.dispatch(ctx, w, r, pr, body)
		if span != nil {
			if code >= 400 {
				span.Fail(http.StatusText(code))
			}
			span.End()
		}
		hist.Observe(time.Since(t0))
	})
}

// relayResp is one replica's buffered HTTP response, ready to relay or
// retry past.
type relayResp struct {
	replica    int
	status     int
	body       []byte
	retryAfter string
	traceID    string
	// retryable marks a response whose envelope says the identical
	// request may succeed elsewhere (drain, saturation, transient
	// backend failure) — the walk moves on to the next ring replica.
	retryable bool
}

// dispatch routes one buffered request: candidate selection, the
// (possibly hedged) ring walk, install broadcast, and the relay. It
// returns the status written.
func (g *Gateway) dispatch(ctx context.Context, w http.ResponseWriter, r *http.Request, pr proxyRoute, body []byte) int {
	key := ""
	if pr.key != nil {
		key = pr.key(r, body)
	}
	cands := g.candidates(key)
	if len(cands) == 0 {
		g.noReplica.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable,
			api.Error{Message: "no up replica to take the request", Kind: api.KindNoReplica, Transient: true})
		return http.StatusServiceUnavailable
	}
	inboundTP := r.Header.Get("traceparent")
	uri := r.URL.RequestURI()
	t0 := time.Now()

	res, err := g.race(ctx, pr, cands, r.Method, uri, body, inboundTP)
	if err != nil {
		if llm.IsCancellation(err) || ctx.Err() != nil {
			api.WriteError(w, statusClientClosed,
				api.Error{Message: "client closed request", Kind: api.KindClientClosed})
			return statusClientClosed
		}
		g.noReplica.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable,
			api.Error{Message: "every replica failed or is unavailable", Kind: api.KindNoReplica, Transient: true})
		return http.StatusServiceUnavailable
	}
	if res.status < 400 {
		g.lat.add(time.Since(t0))
	}
	if pr.broadcast && res.status < 300 {
		g.broadcastInstall(ctx, res.replica, r.Method, uri, body, inboundTP)
	}
	g.relay(w, res)
	return res.status
}

// race runs the ring walk, hedged with a second walk offset by one
// replica when the route is idempotent and the dynamic delay has
// activated (the llm.Router pattern, one tier up).
func (g *Gateway) race(ctx context.Context, pr proxyRoute, cands []int, method, uri string, body []byte, inboundTP string) (*relayResp, error) {
	var delay time.Duration
	if pr.hedge {
		delay = g.hedgeDelay()
	}
	if delay <= 0 || len(cands) < 2 {
		return g.walk(ctx, cands, method, uri, body, inboundTP)
	}

	type result struct {
		res   *relayResp
		err   error
		hedge bool
	}
	ch := make(chan result, 2) // losers never block
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		res, err := g.walk(pctx, cands, method, uri, body, inboundTP)
		ch <- result{res, err, false}
	}()

	rotated := append(append(make([]int, 0, len(cands)), cands[1:]...), cands[0])
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var hcancel context.CancelFunc
	pending := 1
	var last result
	for {
		select {
		case res := <-ch:
			pending--
			if res.err == nil {
				if res.hedge {
					g.hedgeWins.Add(1)
				}
				pcancel()
				if hcancel != nil {
					hcancel()
				}
				return res.res, nil
			}
			// Prefer reporting a replica failure over the loser's
			// cancellation if both walks end in error.
			if last.err == nil || !llm.IsCancellation(res.err) || llm.IsCancellation(last.err) {
				last = res
			}
			if pending == 0 {
				if hcancel != nil {
					hcancel()
				}
				return last.res, last.err
			}
		case <-timer.C:
			if hcancel == nil {
				g.hedges.Add(1)
				var hctx context.Context
				hctx, hcancel = context.WithCancel(ctx)
				defer hcancel()
				pending++
				go func() {
					res, err := g.walk(hctx, rotated, method, uri, body, inboundTP)
					ch <- result{res, err, true}
				}()
			}
		}
	}
}

// walk tries the candidates in order: a down or circuit-open replica is
// skipped, a retryable failure (transport error, drain, saturation,
// transient 5xx) moves to the next distinct replica, and the first
// definitive response — success or a permanent error — is relayed as
// is. When every candidate fails retryably, the last HTTP response (if
// any) is still relayed faithfully; only a response-less walk reports
// errNoReplica.
func (g *Gateway) walk(ctx context.Context, cands []int, method, uri string, body []byte, inboundTP string) (*relayResp, error) {
	var last *relayResp
	attempts := 0
	for _, idx := range cands {
		rep := g.replicas[idx]
		if !rep.available() {
			continue
		}
		ok, probe := rep.breaker.Allow(time.Now())
		if !ok {
			continue
		}
		attempts++
		if attempts > 1 {
			g.retries.Add(1)
		}
		res, err := g.attempt(ctx, idx, probe, method, uri, body, inboundTP)
		if err != nil {
			if llm.IsCancellation(err) || ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		if !res.retryable {
			return res, nil
		}
		last = res
	}
	if last != nil {
		return last, nil
	}
	return nil, errNoReplica
}

// attempt forwards the buffered request to one replica and buffers its
// response. The error return is transport-level only (never HTTP
// status); breaker and failure accounting treat transport errors and
// 5xx as replica health signals, 4xx as the caller's problem.
func (g *Gateway) attempt(ctx context.Context, idx int, probe bool, method, uri string, body []byte, inboundTP string) (*relayResp, error) {
	rep := g.replicas[idx]
	actx, asp := obs.StartSpan(ctx, spanGwForward)
	asp.SetAttr("replica", rep.url)
	tp := asp.Traceparent()
	if tp == "" {
		tp = inboundTP
	}

	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	rep.requests.Add(1)

	fail := func(err error) (*relayResp, error) {
		rep.failures.Add(1)
		if asp != nil {
			if llm.IsCancellation(err) || ctx.Err() != nil {
				// A hedge loser's cancellation is the cost of a hedge win,
				// not a replica failure.
				asp.SetAttr("canceled", "true")
				if probe {
					rep.breaker.CancelProbe()
				}
			} else {
				asp.Fail(err.Error())
			}
			asp.End()
		}
		if !llm.IsCancellation(err) && ctx.Err() == nil {
			rep.breaker.OnResult(time.Now(), false)
		}
		return nil, err
	}

	req, err := http.NewRequestWithContext(actx, method, rep.url+uri, bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	if err != nil {
		return fail(err)
	}

	res := &relayResp{
		replica:    idx,
		status:     resp.StatusCode,
		body:       buf,
		retryAfter: resp.Header.Get("Retry-After"),
		traceID:    resp.Header.Get("X-Trace-Id"),
	}
	if res.status >= 400 {
		var e api.Error
		if json.Unmarshal(buf, &e) == nil && e.Kind != "" {
			res.retryable = e.Transient
		} else {
			res.retryable = res.status >= 500 || res.status == http.StatusTooManyRequests
		}
	}
	// Breaker health: a served response — any status the replica chose
	// to send, 5xx excepted — proves the replica alive.
	rep.breaker.OnResult(time.Now(), res.status < 500)
	if res.status >= 500 {
		rep.failures.Add(1)
	}
	if asp != nil {
		if res.status >= 400 {
			asp.Fail(http.StatusText(res.status))
		}
		asp.End()
	}
	return res, nil
}

// relay writes one buffered replica response to the caller verbatim.
// The replica's X-Trace-Id only fills in when the gateway did not stamp
// its own (same trace id when the hop joined, by construction).
func (g *Gateway) relay(w http.ResponseWriter, res *relayResp) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if res.retryAfter != "" {
		h.Set("Retry-After", res.retryAfter)
	}
	if res.traceID != "" && h.Get("X-Trace-Id") == "" {
		h.Set("X-Trace-Id", res.traceID)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// broadcastInstall fans a successful install body out to every other up
// replica, home replica first having already stored the artifact — the
// others hit the shared store, so the fan-out costs zero model calls.
// Broadcast failures are counted and logged but never fail the caller's
// install: the home replica has the function, and a replica that missed
// the broadcast picks the artifact up from the store on its next
// install or restart.
func (g *Gateway) broadcastInstall(ctx context.Context, home int, method, uri string, body []byte, inboundTP string) {
	for idx, rep := range g.replicas {
		if idx == home || !rep.available() {
			continue
		}
		g.broadcasts.Add(1)
		res, err := g.attempt(ctx, idx, false, method, uri, body, inboundTP)
		if err != nil || res.status >= 400 {
			g.broadcastFails.Add(1)
			status := 0
			if res != nil {
				status = res.status
			}
			g.logf("gateway: install broadcast to %s failed: status=%d err=%v", rep.url, status, err)
		}
	}
}
