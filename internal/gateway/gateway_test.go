package gateway

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	askit "repro"
	"repro/api"
	"repro/client"
	"repro/internal/llm"
	"repro/internal/server"
)

// fleet is a gateway over n in-process askitd replicas.
type fleet struct {
	gw   *Gateway
	gwc  *client.Client
	urls []string
	srvs []*server.Server
	tss  []*httptest.Server
}

// newFleet boots n quiet-sim replicas and a gateway fronting them.
// Mutate cfg before New runs via the optional tweak.
func newFleet(t *testing.T, n int, tweak func(*Config)) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		sim := askit.NewSimClient(int64(i + 1))
		sim.Noise.DirectBlind = 0
		sim.Noise.CodegenBlind = 0
		ai, err := askit.New(askit.Options{Client: sim})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{AskIt: ai, TraceSample: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		f.srvs = append(f.srvs, srv)
		f.tss = append(f.tss, ts)
		f.urls = append(f.urls, ts.URL)
	}
	cfg := Config{
		Replicas:    f.urls,
		TraceSample: -1,
		// Tests drive membership explicitly via CheckReplicas; a long
		// interval keeps the poller from racing assertions.
		HealthInterval: time.Hour,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	f.gw = gw
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	f.gwc = client.New(gts.URL)
	return f
}

// repRequests returns each replica's dispatch-attempt count.
func (f *fleet) repRequests() []uint64 {
	s := f.gw.Stats()
	out := make([]uint64, len(s.Replicas))
	for i, r := range s.Replicas {
		out[i] = r.Requests
	}
	return out
}

// askSpecs are distinct sim-answerable (type, template, args, want)
// tuples — distinct routing keys for spread/retry tests.
var askSpecs = []struct {
	typ, template string
	args          map[string]any
	want          any
}{
	{"number", "Calculate the factorial of {{n}}.", map[string]any{"n": 5}, float64(120)},
	{"string", "Reverse the string {{s}}.", map[string]any{"s": "abc"}, "cba"},
	{"boolean", "Check if {{n}} is a prime number.", map[string]any{"n": 7}, true},
	{"number", "Count the vowels in the string {{s}}.", map[string]any{"s": "hello"}, float64(2)},
	{"number", "Find the greatest common divisor of {{a}} and {{b}}.", map[string]any{"a": 12, "b": 8}, float64(4)},
	{"string", "Convert the number {{n}} to binary.", map[string]any{"n": 5}, "101"},
}

func TestGatewayProxiesWorkRoutes(t *testing.T) {
	f := newFleet(t, 3, nil)
	ctx := context.Background()

	for _, spec := range askSpecs {
		v, err := f.gwc.Ask(ctx, spec.typ, spec.template, spec.args)
		if err != nil {
			t.Fatalf("Ask(%q): %v", spec.template, err)
		}
		if v != spec.want {
			t.Fatalf("Ask(%q) = %v (%T), want %v", spec.template, v, v, spec.want)
		}
	}

	// Tests matter: they are the input/output pairs that validate the
	// generated code (Examples only steer direct-call prompting), and
	// each replica validates its own codegen independently — without
	// them the sim's BuggyCode noise slips through on some seeds.
	inst, err := f.gwc.Install(ctx, api.InstallRequest{
		Name: "fact", Type: "number", Template: "Calculate the factorial of {{n}}.",
		Params: []api.Param{{Name: "n", Type: "number"}},
		Tests:  []api.Example{{Input: map[string]any{"n": 3}, Output: 6}, {Input: map[string]any{"n": 5}, Output: 120}},
	})
	if err != nil || !inst.Compiled {
		t.Fatalf("Install = %+v, %v", inst, err)
	}
	call, err := f.gwc.Call(ctx, "fact", map[string]any{"n": 6})
	if err != nil || call.Value != float64(720) {
		t.Fatalf("Call = %+v, %v", call, err)
	}

	// The install broadcast must have landed the function on every
	// replica — each one serves the call directly.
	for i, url := range f.urls {
		rc := client.New(url)
		res, err := rc.Call(ctx, "fact", map[string]any{"n": 4})
		if err != nil || res.Value != float64(24) {
			t.Fatalf("replica %d direct call = %+v, %v", i, res, err)
		}
	}

	funcs, err := f.gwc.Funcs(ctx)
	if err != nil || len(funcs.Funcs) != 1 || funcs.Funcs[0].Name != "fact" {
		t.Fatalf("merged Funcs = %+v, %v", funcs, err)
	}
	if s := f.gw.Stats(); s.Broadcasts != 2 {
		t.Fatalf("Broadcasts = %d, want 2 (install fanned to the two non-home replicas)", s.Broadcasts)
	}
}

// TestGatewayAffinity: every repeat of one spec key lands on the same
// replica; the random control arm spreads the same key over the fleet.
func TestGatewayAffinity(t *testing.T) {
	f := newFleet(t, 3, nil)
	ctx := context.Background()
	const repeats = 9
	for i := 0; i < repeats; i++ {
		if _, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 5}); err != nil {
			t.Fatal(err)
		}
	}
	touched := 0
	for _, reqs := range f.repRequests() {
		if reqs > 0 {
			touched++
			if reqs != repeats {
				t.Fatalf("home replica saw %d dispatches, want %d", reqs, repeats)
			}
		}
	}
	if touched != 1 {
		t.Fatalf("one spec key touched %d replicas under affinity routing, want exactly 1", touched)
	}

	rnd := newFleet(t, 3, func(c *Config) { c.Routing = RoutingRandom })
	for i := 0; i < repeats; i++ {
		if _, err := rnd.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 5}); err != nil {
			t.Fatal(err)
		}
	}
	touched = 0
	for _, reqs := range rnd.repRequests() {
		if reqs > 0 {
			touched++
		}
	}
	if touched != 3 {
		t.Fatalf("random routing touched %d replicas, want all 3 (rotation)", touched)
	}
}

// TestGatewayRetriesDeadReplica kills a key's home replica under the
// gateway (membership stale on purpose) and requires every call to
// still succeed via re-dispatch — the caller sees retried, never
// failed, requests.
func TestGatewayRetriesDeadReplica(t *testing.T) {
	f := newFleet(t, 3, nil)
	ctx := context.Background()

	// Locate the factorial key's home replica by dispatch-count delta.
	if _, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 3}); err != nil {
		t.Fatal(err)
	}
	home := -1
	for i, reqs := range f.repRequests() {
		if reqs > 0 {
			home = i
		}
	}
	if home < 0 {
		t.Fatal("no replica took the probe ask")
	}

	f.tss[home].Close() // hard kill: connection refused, no drain
	for i := 0; i < 4; i++ {
		v, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 5})
		if err != nil {
			t.Fatalf("ask %d after killing home replica: %v", i, err)
		}
		if v != float64(120) {
			t.Fatalf("ask %d = %v, want 120", i, v)
		}
	}
	s := f.gw.Stats()
	if s.Retries == 0 {
		t.Fatal("home replica died but Retries stayed 0; re-dispatch never happened")
	}
	if s.Replicas[home].Failures == 0 {
		t.Fatal("dead replica shows no failures")
	}
}

// TestGatewayHealthGatesDrainingReplica: a replica that began draining
// leaves rotation on the next health sweep, before it refuses work.
func TestGatewayHealthGatesDrainingReplica(t *testing.T) {
	f := newFleet(t, 3, nil)
	ctx := context.Background()

	// Find the factorial home, then drain it (listener stays open; its
	// healthz now reports draining with 503).
	if _, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 3}); err != nil {
		t.Fatal(err)
	}
	home := -1
	for i, reqs := range f.repRequests() {
		if reqs > 0 {
			home = i
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := f.srvs[home].Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	f.gw.CheckReplicas(ctx)

	before := f.gw.Stats()
	for i := 0; i < 4; i++ {
		if _, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 4}); err != nil {
			t.Fatalf("ask %d with drained home: %v", i, err)
		}
	}
	after := f.gw.Stats()
	if got := after.Replicas[home].Requests - before.Replicas[home].Requests; got != 0 {
		t.Fatalf("drained replica received %d dispatches after leaving rotation", got)
	}
	if after.Retries != before.Retries {
		t.Fatalf("health-gated rerouting burned %d retries; membership should have routed around the drain",
			after.Retries-before.Retries)
	}
}

// TestGatewayDrain: concurrent load through a drain — in-flight work
// finishes, new work gets the draining envelope, and the drain reports
// clean. Run under -race this doubles as the drain data-race test.
func TestGatewayDrain(t *testing.T) {
	f := newFleet(t, 2, nil)
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": i%6 + 1})
			// In-flight requests may legitimately finish either side of
			// the drain flag; only non-draining failures are bugs.
			if err != nil && client.Kind(err) != api.KindDraining {
				errs <- err
			}
		}(i)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if left := f.gw.Drain(drainCtx); left != 0 {
		t.Fatalf("Drain left %d requests in flight", left)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("in-flight request failed across drain: %v", err)
	}

	_, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 2})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Envelope.Kind != api.KindDraining {
		t.Fatalf("post-drain ask = %v, want draining envelope", err)
	}
	if !llm.IsTransient(err) {
		t.Fatalf("draining rejection not transient: %v", err)
	}
	h, err := f.gwc.GatewayHealth(ctx)
	if err != nil || h.Status != "draining" {
		t.Fatalf("post-drain healthz = %+v, %v, want draining", h, err)
	}
}

// TestGatewayNoReplica: with the whole fleet unroutable the gateway
// fails fast with the transient no-replica envelope.
func TestGatewayNoReplica(t *testing.T) {
	f := newFleet(t, 2, nil)
	ctx := context.Background()
	for _, ts := range f.tss {
		ts.Close()
	}
	f.gw.CheckReplicas(ctx)

	_, err := f.gwc.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 2})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Envelope.Kind != api.KindNoReplica {
		t.Fatalf("ask with dead fleet = %v, want no-replica envelope", err)
	}
	if !llm.IsTransient(err) {
		t.Fatalf("no-replica rejection not transient: %v", err)
	}
	h, herr := f.gwc.GatewayHealth(ctx)
	if herr != nil {
		t.Fatal(herr)
	}
	if h.Status != "degraded" || h.ReplicasUp != 0 {
		t.Fatalf("healthz with dead fleet = %+v, want degraded/0", h)
	}
}

// TestGatewayTracePropagation: a caller-minted trace id crosses the
// gateway to the replica — one trace id resolves both hops.
func TestGatewayTracePropagation(t *testing.T) {
	f := &fleet{}
	// Tracing fleet: replicas and gateway both sample everything.
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{AskIt: ai, TraceSample: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	f.srvs = append(f.srvs, srv)
	f.urls = append(f.urls, ts.URL)
	gw, err := New(Config{Replicas: f.urls, TraceSample: 1.0, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)
	gwc := client.New(gts.URL)

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	ctx := client.WithTraceparent(context.Background(), "00-"+tid+"-00f067aa0ba902b7-01")
	res, err := gwc.Do(ctx, "POST", "/v1/ask",
		api.AskRequest{Type: "number", Template: "Calculate the factorial of {{n}}.", Args: map[string]any{"n": 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != tid {
		t.Fatalf("gateway echoed trace id %q, want %q", res.TraceID, tid)
	}
	// Both tiers retained their halves of the same trace: the gateway's
	// root span tree and the replica's, joined by the shared id.
	if _, err := gwc.Trace(ctx, tid); err != nil {
		t.Fatalf("gateway-side trace not retained: %v", err)
	}
	rc := client.New(ts.URL)
	rt, err := rc.Trace(ctx, tid)
	if err != nil {
		t.Fatalf("replica-side trace not retained: %v", err)
	}
	if rt.Root == nil || rt.Root.ParentID == "" {
		t.Fatalf("replica root span has no parent; gateway hop did not propagate its span: %+v", rt.Root)
	}
}
