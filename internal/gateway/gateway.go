// Package gateway is the cluster tier: askit-gw fronts N askitd
// replicas behind the same /v1 wire surface and routes each work
// request by its function/spec key over a bounded-load consistent-hash
// ring. Affinity routing sends repeat work for one key to the same
// replica — its answer cache and compiled-artifact warmth compound —
// while the load bound keeps one hot key from melting its home replica.
//
// Resilience reuses the serving stack's own machinery one level up:
// membership is health-gated by polling each replica's /healthz
// (respecting drain semantics — a draining replica leaves rotation
// before its listener closes), each replica carries an llm.Breaker so a
// dead replica is skipped without paying a connect timeout per request,
// failed dispatches retry on the next distinct ring replica, and p99
// stragglers are hedged with a duplicate dispatch whose loser is
// canceled. W3C trace context propagates on every hop: the gateway
// roots one span tree per request and each replica joins it, so a
// single trace id resolves the whole gateway→replica story.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/llm"
	"repro/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultHealthInterval = 1 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultBoundFactor    = 1.25
	// DefaultTraceSample mirrors the server tier's head-sampling default.
	DefaultTraceSample = 0.01
)

// Routing modes.
const (
	// RoutingAffinity is bounded-load consistent hashing by func/spec
	// key — the production mode.
	RoutingAffinity = "affinity"
	// RoutingRandom ignores the key and spreads requests uniformly
	// (rotating over up replicas). It exists as the control arm for
	// affinity measurements: same fleet, no key locality.
	RoutingRandom = "random"
)

// Span names the gateway tier contributes to request traces; named
// constants per askit-vet's span-name rule.
const (
	spanGwAsk       = "gw_ask"
	spanGwAskBatch  = "gw_ask_batch"
	spanGwInstall   = "gw_install"
	spanGwCall      = "gw_call"
	spanGwCallBatch = "gw_call_batch"
	// spanGwForward covers one dispatch attempt to one replica.
	spanGwForward = "gw_forward"
)

// Config configures a Gateway.
type Config struct {
	// Replicas are the askitd base URLs the gateway fronts; at least one
	// is required. URL order is irrelevant to key ownership (the ring
	// hashes the URLs), but keep URLs stable across restarts.
	Replicas []string
	// HealthInterval is the membership poll period. 0 means
	// DefaultHealthInterval.
	HealthInterval time.Duration
	// ProbeTimeout bounds one /healthz poll. 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// BoundFactor is the bounded-load factor c: a replica may hold at
	// most ceil(c × (inflight+1)/upCount) in-flight requests before the
	// walk spills its keys to the next ring replica. 0 means
	// DefaultBoundFactor; values <= 1 are raised to 1 (hard fair share).
	BoundFactor float64
	// Routing selects RoutingAffinity (default) or RoutingRandom.
	Routing string
	// BreakerThreshold / BreakerOpenFor tune the per-replica circuit
	// breakers exactly like llm.RouterOptions: 0 means the llm defaults,
	// negative threshold disables breakers.
	BreakerThreshold int
	BreakerOpenFor   time.Duration
	// HedgeDelay is how long the first dispatch of an idempotent route
	// may straggle before a duplicate dispatch races it on the next ring
	// replica. 0 derives the delay from observed latency (2×p99, floored
	// at 1ms) once HedgeMinSamples successes exist; negative disables
	// hedging.
	HedgeDelay time.Duration
	// HedgeMinSamples gates the dynamic hedge delay; 0 means the llm
	// default.
	HedgeMinSamples int
	// RequestTimeout bounds each proxied request. 0 disables (the
	// replicas enforce their own per-request timeout).
	RequestTimeout time.Duration
	// Metrics is the observability registry; nil gets a private one.
	Metrics *obs.Registry
	// TraceSample is the head-sampling probability for gateway request
	// traces; 0 means DefaultTraceSample, negative disables tracing.
	TraceSample float64
	// Logf receives operational traces; nil disables.
	Logf func(format string, args ...any)
	// HTTPClient overrides the forwarding client (tests, custom
	// transports). Nil builds one with per-replica connection reuse.
	HTTPClient *http.Client
}

// replica is the gateway's view of one askitd.
type replica struct {
	url string
	cli *client.Client

	up       atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64

	requests *obs.Counter
	failures *obs.Counter
	breaker  *llm.Breaker
}

// available reports whether the replica should receive routed traffic.
func (rep *replica) available() bool { return rep.up.Load() && !rep.draining.Load() }

// Gateway fronts the replica fleet. Create with New, mount via Handler,
// shut down via Drain (or Close to just stop the poller).
type Gateway struct {
	cfg      Config
	hc       *http.Client
	replicas []*replica
	ring     *ring
	mux      *http.ServeMux
	metrics  *obs.Registry
	tracer   *obs.Tracer
	start    time.Time
	hedgeMin int

	next     atomic.Uint64 // rotation cursor for RoutingRandom
	inflight atomic.Int64
	draining atomic.Bool
	idle     chan struct{}
	idleOnce sync.Once

	pollStop func()
	pollDone chan struct{}

	requests         *obs.Counter
	retries          *obs.Counter
	hedges           *obs.Counter
	hedgeWins        *obs.Counter
	broadcasts       *obs.Counter
	broadcastFails   *obs.Counter
	rejectedDraining *obs.Counter
	noReplica        *obs.Counter

	lat latRing
}

// New validates cfg, registers the gateway's instruments, performs one
// synchronous membership sweep (so a gateway started after its fleet
// routes immediately), and starts the background health poller.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("gateway: Config.Replicas is required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.BoundFactor == 0 {
		cfg.BoundFactor = DefaultBoundFactor
	}
	if cfg.BoundFactor < 1 {
		cfg.BoundFactor = 1
	}
	switch cfg.Routing {
	case "":
		cfg.Routing = RoutingAffinity
	case RoutingAffinity, RoutingRandom:
	default:
		return nil, fmt.Errorf("gateway: unknown routing mode %q", cfg.Routing)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	g := &Gateway{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		start:    time.Now(),
		idle:     make(chan struct{}),
		hedgeMin: cfg.HedgeMinSamples,
	}
	if g.hedgeMin <= 0 {
		g.hedgeMin = llm.DefaultHedgeMinSamples
	}
	g.hc = cfg.HTTPClient
	if g.hc == nil {
		g.hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}

	reg := g.metrics
	g.requests = reg.Counter("askit_gw_requests_total",
		obs.Help("Work requests accepted by the gateway."))
	g.retries = reg.Counter("askit_gw_retries_total",
		obs.Help("Re-dispatches to another replica after a retryable failure."))
	g.hedges = reg.Counter("askit_gw_hedges_total",
		obs.Help("Duplicate dispatches launched for straggling requests."))
	g.hedgeWins = reg.Counter("askit_gw_hedge_wins_total",
		obs.Help("Requests where the hedged dispatch finished first."))
	g.broadcasts = reg.Counter("askit_gw_broadcasts_total",
		obs.Help("Install bodies fanned out to non-home replicas."))
	g.broadcastFails = reg.Counter("askit_gw_broadcast_failures_total",
		obs.Help("Install broadcasts that failed on a non-home replica."))
	g.rejectedDraining = reg.Counter("askit_gw_rejected_total",
		obs.Help("Requests refused by the gateway, by reason."),
		obs.Labels("reason", "draining"))
	g.noReplica = reg.Counter("askit_gw_rejected_total",
		obs.Labels("reason", "no_replica"))
	reg.GaugeFunc("askit_gw_inflight",
		func() float64 { return float64(g.inflight.Load()) },
		obs.Help("Requests currently in flight through the gateway."))
	reg.GaugeFunc("askit_gw_replicas_up",
		func() float64 { return float64(g.upCount()) },
		obs.Help("Replicas currently up and not draining."))

	urls := make([]string, len(cfg.Replicas))
	for i, raw := range cfg.Replicas {
		u := strings.TrimRight(raw, "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls[i] = u
		rep := &replica{
			url:     u,
			cli:     client.New(u, client.WithHTTPClient(g.hc)),
			breaker: llm.NewBreaker(cfg.BreakerThreshold, cfg.BreakerOpenFor),
		}
		lbl := obs.Labels("replica", u)
		rep.requests = reg.Counter("askit_gw_replica_requests_total",
			obs.Help("Dispatch attempts per replica."), lbl)
		rep.failures = reg.Counter("askit_gw_replica_failures_total",
			obs.Help("Failed dispatch attempts per replica (transport or 5xx)."), lbl)
		reg.GaugeFunc("askit_gw_replica_up", func() float64 {
			if rep.available() {
				return 1
			}
			return 0
		}, obs.Help("Replica routability: 1 up, 0 down or draining."), lbl)
		if rep.breaker != nil {
			br := rep.breaker
			br.SetNotify(func(to string) { reg.Emit("gw-breaker-"+to, u) })
			reg.CounterFunc("askit_gw_replica_breaker_opens_total", br.OpenCount,
				obs.Help("Breaker open transitions per replica."), lbl)
		}
		g.replicas = append(g.replicas, rep)
	}
	g.ring = buildRing(urls, vnodesPerReplica)

	if cfg.TraceSample >= 0 {
		sample := cfg.TraceSample
		if sample == 0 {
			sample = DefaultTraceSample
		}
		g.tracer = obs.NewTracer(g.metrics, obs.TracerOptions{Sample: sample})
	}
	g.routes()
	g.startPoller()
	return g, nil
}

// Handler returns the root http.Handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Tracer returns the gateway's tracer; nil when tracing is disabled.
func (g *Gateway) Tracer() *obs.Tracer { return g.tracer }

// Metrics returns the gateway's observability registry.
func (g *Gateway) Metrics() *obs.Registry { return g.metrics }

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// upCount returns how many replicas are currently routable.
func (g *Gateway) upCount() int {
	n := 0
	for _, rep := range g.replicas {
		if rep.available() {
			n++
		}
	}
	return n
}

// candidates returns the replica indexes to try for key, best first,
// filtered to routable replicas. Affinity mode walks the consistent-hash
// ring and applies the bounded-load rule: a replica already holding more
// than its fair share (× BoundFactor) of in-flight requests is demoted
// behind the under-loaded ones, so a hot key spills to its successor
// instead of queueing. Random mode rotates over the routable replicas.
func (g *Gateway) candidates(key string) []int {
	if g.cfg.Routing == RoutingRandom || key == "" {
		var up []int
		for i, rep := range g.replicas {
			if rep.available() {
				up = append(up, i)
			}
		}
		if len(up) <= 1 {
			return up
		}
		start := int((g.next.Add(1) - 1) % uint64(len(up)))
		rot := make([]int, 0, len(up))
		for i := 0; i < len(up); i++ {
			rot = append(rot, up[(start+i)%len(up)])
		}
		return rot
	}

	order := g.ring.order(key, make([]int, 0, len(g.replicas)))
	var total int64
	up := 0
	for _, rep := range g.replicas {
		if rep.available() {
			up++
			total += rep.inflight.Load()
		}
	}
	if up == 0 {
		return nil
	}
	bound := int64(math.Ceil(g.cfg.BoundFactor * float64(total+1) / float64(up)))
	under := make([]int, 0, up)
	var over []int
	for _, idx := range order {
		rep := g.replicas[idx]
		if !rep.available() {
			continue
		}
		if rep.inflight.Load() < bound {
			under = append(under, idx)
		} else {
			over = append(over, idx)
		}
	}
	return append(under, over...)
}

// exit releases one admission slot; the last one out signals Drain.
func (g *Gateway) exit() {
	if g.inflight.Add(-1) == 0 && g.draining.Load() {
		g.idleOnce.Do(func() { close(g.idle) })
	}
}

// Draining reports whether Drain has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Inflight returns the number of requests currently in flight.
func (g *Gateway) Inflight() int { return int(g.inflight.Load()) }

// Drain stops admitting work (healthz flips to draining so an upstream
// balancer pulls the gateway), waits for in-flight requests to finish
// (bounded by ctx), then stops the health poller. It returns the number
// of requests still in flight when the wait ended — zero on a clean
// drain. The replicas are not touched: they drain on their own SIGTERM.
func (g *Gateway) Drain(ctx context.Context) int {
	g.draining.Store(true)
	if g.inflight.Load() == 0 {
		g.idleOnce.Do(func() { close(g.idle) })
	}
	left := 0
	select {
	case <-g.idle:
	case <-ctx.Done():
		left = int(g.inflight.Load())
		g.logf("gateway: drain timed out with %d requests in flight", left)
	}
	g.Close()
	return left
}

// Close stops the health poller. Safe to call more than once.
func (g *Gateway) Close() {
	g.pollStop()
	<-g.pollDone
}

// Stats snapshots the gateway's counters and per-replica state.
func (g *Gateway) Stats() api.GatewayStatsResponse {
	s := api.GatewayStatsResponse{
		Requests:         g.requests.Value(),
		Retries:          g.retries.Value(),
		Hedges:           g.hedges.Value(),
		HedgeWins:        g.hedgeWins.Value(),
		Broadcasts:       g.broadcasts.Value(),
		RejectedDraining: g.rejectedDraining.Value(),
		NoReplica:        g.noReplica.Value(),
		Routing:          g.cfg.Routing,
		UptimeS:          time.Since(g.start).Seconds(),
		Draining:         g.draining.Load(),
	}
	now := time.Now()
	for _, rep := range g.replicas {
		state, opens := rep.breaker.Snapshot(now)
		s.Replicas = append(s.Replicas, api.GatewayReplicaStats{
			URL:          rep.url,
			Up:           rep.up.Load(),
			Draining:     rep.draining.Load(),
			Inflight:     rep.inflight.Load(),
			Requests:     rep.requests.Value(),
			Failures:     rep.failures.Value(),
			Breaker:      state,
			BreakerOpens: opens,
		})
	}
	return s
}

// hedgeDelay returns the delay before a duplicate dispatch, or 0 when
// hedging should not fire for this request (mirrors llm.Router).
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeDelay < 0 || len(g.replicas) < 2 {
		return 0
	}
	if g.cfg.HedgeDelay > 0 {
		return g.cfg.HedgeDelay
	}
	p99, n := g.lat.p99()
	if n < g.hedgeMin {
		return 0
	}
	d := 2 * p99
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// latRing holds recent successful request latencies for the dynamic
// hedge delay (the llm.Router pattern, sized for a gateway).
type latRing struct {
	mu  sync.Mutex
	buf [256]time.Duration
	n   int
	pos int
}

func (l *latRing) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.pos] = d
	l.pos = (l.pos + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

func (l *latRing) p99() (time.Duration, int) {
	l.mu.Lock()
	n := l.n
	samples := make([]time.Duration, n)
	copy(samples, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(99*(n-1))/100], n
}
