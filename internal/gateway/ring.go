package gateway

import (
	"sort"
	"strconv"
)

// Consistent-hash ring over the configured replica set. Each replica
// contributes vnodesPerReplica virtual points so key ownership spreads
// evenly; a key's candidate order is the distinct-replica successor walk
// from its hash position. The ring is built once over the *configured*
// replicas and never rebuilt: a down replica is skipped during the walk,
// which is exactly the consistent-hashing rebalance guarantee — only the
// keys owned by the lost replica move (to their next-distinct successor),
// every other key keeps its owner.

// vnodesPerReplica is the virtual-node count per replica. 64 points per
// replica keeps the max/mean key imbalance within a few percent for small
// fleets without making ring construction or the successor walk
// noticeable.
const vnodesPerReplica = 64

type ringPoint struct {
	hash    uint64
	replica int
}

type ring struct {
	points []ringPoint
	n      int // replica count
}

// fnv1a is the 64-bit FNV-1a hash finished with a splitmix64 avalanche.
// Stable across processes (unlike maphash) and cheap; the finalizer
// matters — raw FNV-1a over near-identical strings ("url#0", "url#1",
// ...) clusters on the ring badly enough to skew ownership 6:1.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// buildRing places vnodes points per named replica on the ring. Names
// must be stable across gateway restarts (replica URLs) so key ownership
// is stable too.
func buildRing(names []string, vnodes int) *ring {
	r := &ring{n: len(names)}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    fnv1a(name + "#" + strconv.Itoa(v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// order returns every replica index exactly once, in successor order
// from key's ring position: the key's home replica first, then each
// next-distinct replica clockwise. The caller filters for liveness and
// load; the ring itself is membership-blind by design (see package
// comment). buf, when non-nil, is reused to avoid the allocation.
func (r *ring) order(key string, buf []int) []int {
	out := buf[:0]
	if r.n == 0 {
		return out
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
