package gateway

import (
	"strconv"
	"testing"
)

// ringNames builds n stable fake replica URLs.
func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "http://replica-" + strconv.Itoa(i) + ":8080"
	}
	return names
}

// TestRingRebalance is the consistent-hashing contract: removing one of
// N replicas moves only the keys that replica owned (≤ 1/N + ε of the
// keyspace), and every surviving replica keeps every key it had.
func TestRingRebalance(t *testing.T) {
	const n, keys = 5, 20000
	names := ringNames(n)
	full := buildRing(names, vnodesPerReplica)
	reduced := buildRing(names[:n-1], vnodesPerReplica)

	moved := 0
	for i := 0; i < keys; i++ {
		key := "key-" + strconv.Itoa(i)
		before := full.order(key, nil)[0]
		after := reduced.order(key, nil)[0]
		if before == n-1 {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %q owned by surviving replica %d moved to %d", key, before, after)
		}
	}
	frac := float64(moved) / float64(keys)
	if want, eps := 1.0/float64(n), 0.05; frac > want+eps {
		t.Errorf("removing 1/%d of replicas moved %.1f%% of keys, want ≤ %.1f%%",
			n, 100*frac, 100*(want+eps))
	}
	if frac == 0 {
		t.Error("no key was owned by the removed replica; ring is not spreading keys")
	}
}

// TestRingBalance checks vnode spreading: no replica owns a wildly
// outsized share of the keyspace.
func TestRingBalance(t *testing.T) {
	const n, keys = 5, 20000
	r := buildRing(ringNames(n), vnodesPerReplica)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.order("key-"+strconv.Itoa(i), nil)[0]]++
	}
	for i, c := range counts {
		share := float64(c) / float64(keys)
		if share < 0.08 || share > 0.40 {
			t.Errorf("replica %d owns %.1f%% of keys; want a rough 1/%d share", i, 100*share, n)
		}
	}
}

// TestRingOrderDistinct: the successor walk yields every replica exactly
// once, home first, and is stable for a fixed key.
func TestRingOrderDistinct(t *testing.T) {
	const n = 4
	r := buildRing(ringNames(n), vnodesPerReplica)
	order := r.order("some-key", nil)
	if len(order) != n {
		t.Fatalf("order returned %d replicas, want %d", len(order), n)
	}
	seen := map[int]bool{}
	for _, idx := range order {
		if seen[idx] {
			t.Fatalf("replica %d appears twice in %v", idx, order)
		}
		seen[idx] = true
	}
	again := r.order("some-key", make([]int, 0, n))
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("order not stable: %v vs %v", order, again)
		}
	}
}
