package gateway

import (
	"context"
	"sync"
	"time"
)

// Health-gated membership: a background poller probes every replica's
// /healthz each HealthInterval and flips its routability. The probe
// respects the daemon's drain semantics — askitd answers 503 with
// status "draining" the moment Drain begins, while its listener is
// still accepting — so a draining replica leaves rotation *before* it
// starts refusing work, instead of after the gateway has burned a
// request discovering it.

// startPoller performs one synchronous sweep (a gateway started after
// its fleet must route immediately, not one poll interval later) and
// launches the background loop.
func (g *Gateway) startPoller() {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	g.pollStop = func() { once.Do(cancel) }
	g.pollDone = make(chan struct{})
	g.CheckReplicas(ctx)
	go func() {
		defer close(g.pollDone)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.CheckReplicas(ctx)
			}
		}
	}()
}

// CheckReplicas probes every replica's /healthz once, in parallel, and
// updates membership. Exported so tests (and operators' tooling) can
// force a sweep instead of waiting out the poll interval.
func (g *Gateway) CheckReplicas(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range g.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			g.checkReplica(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

func (g *Gateway) checkReplica(ctx context.Context, rep *replica) {
	hctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	h, err := rep.cli.Health(hctx)
	up := err == nil
	draining := up && h.Status == "draining"
	wasRoutable := rep.available()
	rep.draining.Store(draining)
	rep.up.Store(up)
	if routable := rep.available(); routable != wasRoutable {
		switch {
		case routable:
			g.metrics.Emit("gw-replica-up", rep.url)
			g.logf("gateway: replica %s joined rotation", rep.url)
		case draining:
			g.metrics.Emit("gw-replica-draining", rep.url)
			g.logf("gateway: replica %s draining, left rotation", rep.url)
		default:
			g.metrics.Emit("gw-replica-down", rep.url)
			g.logf("gateway: replica %s down: %v", rep.url, err)
		}
	}
}
