// Package askit is a Go implementation of AskIt, the unified programming
// interface for programming with large language models (Okuda &
// Amarasinghe, CGO 2024).
//
// AskIt gives one interface — Ask and Define — for the two ways an
// application can use an LLM:
//
//   - directly answerable tasks: the LLM answers at runtime. The
//     expected result type becomes a JSON-schema-like constraint in the
//     prompt (type-guided output control), and the response is parsed
//     and validated against that type with a feedback-retry loop.
//
//   - codable tasks: the LLM writes code for the task once. The same
//     prompt template becomes a function-synthesis prompt; the generated
//     code is validated syntactically and against example tests, cached,
//     and called natively afterwards.
//
// A Func moves between the two modes with a single Compile call and no
// change to the prompt template.
//
// Quickstart:
//
//	ai, _ := askit.New(askit.Options{Client: askit.NewSimClient(1)})
//	sentiment, _ := ai.Ask(ctx, askit.StrEnum("positive", "negative"),
//	    "What is the sentiment of {{review}}?",
//	    askit.Args{"review": "The product is fantastic."})
//
// This reproduction is offline: NewSimClient returns a deterministic
// simulated chat model (see internal/llm). Any other llm.Client
// implementation, e.g. one backed by a hosted API, plugs in the same
// way — including NewRouter, which fans one client interface over
// several backends with failover and bounded concurrency.
//
// The engine is safe for concurrent use: identical concurrent Ask/Call
// requests coalesce through a sharded answer cache, concurrent Compile
// calls share one codegen loop, and AskBatch/CallBatch fan slices of
// Args over a worker pool. Stats reports the serving counters.
//
// Compiled functions can outlive the process: Options.StorePath points
// the engine at a persistent artifact store, so a restarted replica
// re-installs previously generated code with zero codegen LLM calls,
// and SnapshotAnswers extends the warm start to memoized direct-call
// answers.
package askit

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/jsonx"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/store"
	"repro/internal/types"
)

// Type is an AskIt type (paper Table I); it controls prompt generation
// and response validation.
type Type = types.Type

// Field is one property of a Dict type.
type Field = types.Field

// Primitive types (Table I).
var (
	Int   = types.Int
	Float = types.Float
	Bool  = types.Bool
	Str   = types.Str
	Void  = types.Void
	Any   = types.Any
)

// Composite type constructors (Table I).
var (
	List    = types.List
	Dict    = types.Dict
	Union   = types.Union
	Literal = types.Literal
	StrEnum = types.StrEnum
)

// ParseTS parses a TypeScript type expression into a Type.
var ParseTS = types.ParseTS

// Args binds template parameters to values for one call.
type Args = map[string]any

// Example is a task input/output example, used for few-shot prompting
// (ask/define's first example list) and generated-code validation
// (define's second example list).
type Example struct {
	Input  Args
	Output any
}

// Client is the LLM backend interface.
type Client = llm.Client

// NewSimClient returns the deterministic simulated LLM with the default
// skill set and noise model, seeded for reproducibility.
func NewSimClient(seed int64) *llm.Sim { return llm.NewSim(seed) }

// Options configures an AskIt instance.
type Options struct {
	// Client is the LLM backend; required.
	Client Client
	// Model names the backend model; default "gpt-4".
	Model string
	// MaxRetries bounds retries after the first attempt (default 9,
	// the paper's limit).
	MaxRetries int
	// Temperature is the sampling temperature; nil means the default
	// 1.0. Use Temp to set it inline: Temperature: askit.Temp(0)
	// requests greedy decoding, which is distinct from leaving it unset.
	Temperature *float64
	// AnswerCacheSize bounds the memoized direct-call answer cache
	// (total entries): 0 means the default (core.DefaultAnswerCacheSize),
	// negative disables caching. With caching on, identical concurrent
	// Ask/Call requests coalesce into one model round-trip.
	AnswerCacheSize int
	// RetryBackoff is the base delay before resending after a transient
	// client error (full-jitter exponential, context-aware, Retry-After
	// hints honored). 0 means the default 10ms base; negative disables
	// backoff.
	RetryBackoff time.Duration
	// RetryBudget is the engine-wide transient-retry token pool; an
	// empty pool fails calls fast with a classified transient error
	// instead of amplifying retries against a failing backend. 0 means
	// the default (64); negative disables the budget.
	RetryBudget int
	// CacheDir persists generated functions (the paper's askit/
	// directory); empty disables the legacy disk cache. Prefer
	// StorePath: the artifact store adds integrity checking, engine
	// versioning, and validation records.
	CacheDir string
	// StorePath, when non-empty, opens (creating if needed) the
	// persistent artifact store rooted at that directory. Compiled
	// functions outlive the process: a restarted replica re-installs
	// them from disk with zero codegen LLM calls, and SnapshotAnswers
	// extends the warm start to memoized direct-call answers. Use Store
	// instead to share one opened store across engines.
	StorePath string
	// Store is an already-open artifact store (or any StoreBackend
	// wrapper around one); see StorePath. When both are set, Store wins.
	Store StoreBackend
	// FS provides the virtual file system for file-access tasks; nil
	// disables the appendFile/readFile/writeFile host bindings.
	FS *core.VirtualFS
	// MaxSteps bounds generated-code execution; 0 = default (10M steps).
	MaxSteps int64
	// Optimize applies the constant-folding pass to generated code
	// before it is stored (visible to Source() and the tree-walker).
	// The default compiled engine always folds during lowering.
	Optimize bool
	// TreeWalker runs generated code on minilang's reference AST
	// interpreter instead of the default compiled closure engine. The
	// compiled engine is an order of magnitude faster; the tree-walker
	// is kept for differential testing and debugging.
	TreeWalker bool
	// Metrics, when non-nil, is the observability registry the engine
	// (and its instrumented store) emits into. Share one registry —
	// NewMetrics() — between Options.Metrics, the router
	// (llm.RouterOptions.Metrics), and the HTTP server so one /metrics
	// exposition covers every tier. Nil gives the engine a private
	// registry, reachable via AskIt.Metrics.
	Metrics *Metrics
	// Logf receives diagnostic traces; nil disables.
	Logf func(format string, args ...any)
}

// NewVirtualFS returns an empty virtual file system for Options.FS.
func NewVirtualFS() *core.VirtualFS { return core.NewVirtualFS() }

// Store is the persistent artifact store: a content-addressed,
// versioned on-disk record of every compiled function (generated
// source, cache identity, validation record) plus an optional snapshot
// of the answer cache. See Options.StorePath.
type Store = store.Store

// StoreBackend is the persistence interface the engine programs
// against; *Store is the canonical implementation, and wrappers (e.g.
// fault injection) interpose by implementing it.
type StoreBackend = store.Backend

// OpenStore opens (creating if needed) the artifact store rooted at
// dir, for sharing one store across several engines via
// Options.Store / WithStore.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// WithStore returns a copy of o using s as the persistence tier; a
// chaining convenience for sharing one opened store:
//
//	st, _ := askit.OpenStore(dir)
//	ai, _ := askit.New(askit.Options{Client: client}.WithStore(st))
func (o Options) WithStore(s StoreBackend) Options {
	o.Store = s
	return o
}

// Temp returns a pointer to v, for Options.Temperature.
func Temp(v float64) *float64 { return &v }

// NewRouter returns an llm.Router fanning requests over several
// backends with round-robin placement, failover, and per-backend
// bounded concurrency; use it as Options.Client for multi-backend
// serving.
func NewRouter(backends ...llm.Backend) (*llm.Router, error) { return llm.NewRouter(backends...) }

// NewRouterWithOptions is NewRouter with the resilience machinery
// (breakers, hedging) and metrics registry configurable.
func NewRouterWithOptions(opts RouterOptions, backends ...RouterBackend) (*llm.Router, error) {
	return llm.NewRouterWithOptions(opts, backends...)
}

// RouterBackend describes one upstream of NewRouter.
type RouterBackend = llm.Backend

// RouterOptions tunes NewRouterWithOptions (breakers, hedging, metrics).
type RouterOptions = llm.RouterOptions

// Metrics is the unified observability registry (see internal/obs):
// lock-free counters, gauges, and latency histograms for every tier,
// a bounded event ring (breaker transitions, store degradation,
// drains), Prometheus text exposition via WritePrometheus, and the
// /v1/stats JSON wire forms via GroupJSON.
type Metrics = obs.Registry

// NewMetrics returns an empty observability registry, for sharing one
// exposition across the engine, router, and server.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Stats is a snapshot of the engine's serving counters: answer-cache
// hits/misses/coalesces, compile singleflight coalesces, and call mix.
type Stats = core.Stats

// AskIt is the top-level handle.
type AskIt struct {
	engine *core.Engine
}

// New validates opts and returns an AskIt instance.
func New(opts Options) (*AskIt, error) {
	st := opts.Store
	if st == nil && opts.StorePath != "" {
		var err error
		if st, err = store.Open(opts.StorePath); err != nil {
			return nil, err
		}
	}
	engine, err := core.NewEngine(core.Options{
		Client:          opts.Client,
		Model:           opts.Model,
		MaxRetries:      opts.MaxRetries,
		Temperature:     opts.Temperature,
		AnswerCacheSize: opts.AnswerCacheSize,
		RetryBackoff:    opts.RetryBackoff,
		RetryBudget:     opts.RetryBudget,
		CacheDir:        opts.CacheDir,
		Store:           st,
		FS:              opts.FS,
		MaxSteps:        opts.MaxSteps,
		Optimize:        opts.Optimize,
		TreeWalker:      opts.TreeWalker,
		Metrics:         opts.Metrics,
		Logf:            opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &AskIt{engine: engine}, nil
}

// Engine exposes the underlying engine for advanced use (experiment
// harnesses, ablations).
func (a *AskIt) Engine() *core.Engine { return a.engine }

// Stats returns a snapshot of the engine's serving counters. The
// snapshot is taken atomically (best-effort stable read), so its fields
// are mutually consistent under concurrent load; take one snapshot and
// read every field from it rather than calling Stats per field.
func (a *AskIt) Stats() Stats { return a.engine.Stats() }

// Metrics returns the observability registry the engine emits into —
// the one passed in Options.Metrics, or the engine's private one.
// Always non-nil.
func (a *AskIt) Metrics() *Metrics { return a.engine.Metrics() }

// ErrDraining is returned by Compile when the engine is draining: a
// shutting-down replica refuses to start fresh codegen LLM loops while
// still finishing in-flight calls and warm installs. See BeginDrain.
var ErrDraining = core.ErrDraining

// BeginDrain flips the engine into draining mode ahead of shutdown:
// calls keep executing and artifact-store warm installs still succeed,
// but Compile calls that would start a new codegen LLM loop fail fast
// with ErrDraining. A serving tier calls this when it stops admitting
// requests, then waits for Stats().InflightCalls to reach zero before
// Close. Draining is one-way.
func (a *AskIt) BeginDrain() { a.engine.BeginDrain() }

// Store returns the configured artifact store backend, or nil.
func (a *AskIt) Store() StoreBackend { return a.engine.Options().Store }

// Close flushes the warm-start state and closes the artifact store:
// the answer cache is snapshotted (when a store and the cache are
// configured) and the store stops accepting writes, so the state a
// restarted replica sees is exactly the state at Close. An AskIt
// without a store closes trivially. Close does not wait for in-flight
// calls; drain first (BeginDrain + Stats().InflightCalls).
//
// A snapshot that fails on store I/O does not fail Close: the answer
// snapshot is warm-start cache state, so losing it costs the next
// replica some answer hits, never correctness — and a flaky disk at
// shutdown must not turn a graceful drain into an unclean exit. The
// failure is recorded in Stats().StoreErrors.
func (a *AskIt) Close() error {
	st := a.Store()
	if st == nil {
		return nil
	}
	// Best-effort: ErrAnswersDisabled and ErrClosed (an earlier Close
	// already snapshotted) are clean shutdowns, and I/O failures are
	// already counted by the engine.
	_, _ = a.engine.SnapshotAnswers()
	return st.Close()
}

// SnapshotAnswers persists the memoized direct-call answer cache to
// the configured artifact store and returns the number of answers
// written. A replica restarted against the same store then serves
// those answers without any model traffic. Requires Options.StorePath
// or Options.Store, and the answer cache enabled.
func (a *AskIt) SnapshotAnswers() (int, error) { return a.engine.SnapshotAnswers() }

// Ask performs one directly answerable task (paper §III-A): it renders
// the prompt template with args, constrains the response to ret, and
// returns the decoded answer. It is the ask<T>(template) API with the
// type parameter passed as a value, exactly like the paper's Python
// binding (§III-F).
func (a *AskIt) Ask(ctx context.Context, ret Type, promptTemplate string, args Args) (any, error) {
	f, err := a.engine.Define(ret, promptTemplate)
	if err != nil {
		return nil, err
	}
	res, err := f.Call(ctx, args)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// AskAs is the generic wrapper deriving the AskIt type from T via
// reflection and decoding the answer into T.
func AskAs[T any](ctx context.Context, a *AskIt, promptTemplate string, args Args) (T, error) {
	var zero T
	ret, err := types.FromGo(reflect.TypeOf(zero))
	if err != nil {
		return zero, err
	}
	v, err := a.Ask(ctx, ret, promptTemplate, args)
	if err != nil {
		return zero, err
	}
	return convert[T](v)
}

func convert[T any](v any) (T, error) {
	var out T
	raw := jsonx.Encode(v)
	if err := json.Unmarshal([]byte(raw), &out); err != nil {
		return out, fmt.Errorf("askit: cannot decode answer into %T: %w", out, err)
	}
	return out, nil
}

// Func is a task defined from a prompt template (paper §III-A define).
type Func struct {
	inner *core.Func
}

// DefineOption customizes Define.
type DefineOption func(*defineConfig)

type defineConfig struct {
	params   []Field
	examples []Example
	tests    []Example
	name     string
	treeWalk bool
}

// WithParamTypes declares parameter types for the generated function
// signature (define's second type parameter in TypeScript).
func WithParamTypes(params ...Field) DefineOption {
	return func(c *defineConfig) { c.params = params }
}

// WithExamples supplies few-shot examples for direct calls.
func WithExamples(examples ...Example) DefineOption {
	return func(c *defineConfig) { c.examples = examples }
}

// WithTests supplies input/output examples that validate generated code
// (define's second example list, §III-B).
func WithTests(tests ...Example) DefineOption {
	return func(c *defineConfig) { c.tests = tests }
}

// WithName fixes the generated function's name.
func WithName(name string) DefineOption {
	return func(c *defineConfig) { c.name = name }
}

// WithTreeWalker makes this function execute generated code on the
// reference AST interpreter instead of the compiled closure engine.
func WithTreeWalker() DefineOption {
	return func(c *defineConfig) { c.treeWalk = true }
}

// Define builds a reusable task function from a prompt template.
func (a *AskIt) Define(ret Type, promptTemplate string, opts ...DefineOption) (*Func, error) {
	var cfg defineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var coreOpts []core.DefineOption
	if cfg.params != nil {
		coreOpts = append(coreOpts, core.WithParamTypes(cfg.params))
	}
	if cfg.examples != nil {
		coreOpts = append(coreOpts, core.WithExamples(toPromptExamples(cfg.examples)))
	}
	if cfg.tests != nil {
		coreOpts = append(coreOpts, core.WithTests(toPromptExamples(cfg.tests)))
	}
	if cfg.name != "" {
		coreOpts = append(coreOpts, core.WithName(cfg.name))
	}
	if cfg.treeWalk {
		coreOpts = append(coreOpts, core.WithTreeWalker())
	}
	inner, err := a.engine.Define(ret, promptTemplate, coreOpts...)
	if err != nil {
		return nil, err
	}
	return &Func{inner: inner}, nil
}

func toPromptExamples(in []Example) []prompt.Example {
	out := make([]prompt.Example, len(in))
	for i, e := range in {
		out[i] = prompt.Example{Input: e.Input, Output: e.Output}
	}
	return out
}

// Call executes the task with named arguments. Before Compile it calls
// the LLM; after, it runs the generated function.
func (f *Func) Call(ctx context.Context, args Args) (any, error) {
	res, err := f.inner.Call(ctx, args)
	if err != nil {
		return nil, err
	}
	return res.Value, nil
}

// CallInfo describes how a call executed.
type CallInfo struct {
	// Compiled is true when generated code ran (no LLM in the loop).
	Compiled bool
	// Attempts is the number of LLM completions (0 when Compiled).
	Attempts int
	// ModelLatency is the (simulated) LLM latency of the call.
	ModelLatency time.Duration
	// ExecTime is the native execution time when Compiled.
	ExecTime time.Duration
}

// CallInfo executes the task and additionally reports provenance and
// timing — the quantities Table III aggregates.
func (f *Func) CallInfo(ctx context.Context, args Args) (any, CallInfo, error) {
	res, err := f.inner.Call(ctx, args)
	info := CallInfo{
		Compiled:     res.Compiled,
		Attempts:     res.LLM.Attempts,
		ModelLatency: res.LLM.Latency,
		ExecTime:     res.ExecTime,
	}
	if err != nil {
		return nil, info, err
	}
	return res.Value, info, nil
}

// Compile asks the LLM to implement the task as code (paper §III-D).
// After a successful Compile, Call dispatches to the generated function.
// Compiling twice is a no-op. This is the Python binding's
// define(...).compile() (§III-F).
func (f *Func) Compile(ctx context.Context) error {
	_, err := f.inner.Compile(ctx)
	return err
}

// CompileStats reports how code generation went.
type CompileStats struct {
	Attempts    int
	CompileTime time.Duration
	LOC         int
	FromCache   bool
	Source      string
}

// CompileInfo compiles (if needed) and returns the statistics.
func (f *Func) CompileInfo(ctx context.Context) (CompileStats, error) {
	info, err := f.inner.Compile(ctx)
	if err != nil {
		return CompileStats{}, err
	}
	return CompileStats{
		Attempts:    info.Attempts,
		CompileTime: info.CompileTime,
		LOC:         info.LOC,
		FromCache:   info.FromCache,
		Source:      info.Source,
	}, nil
}

// InstallSource installs caller-provided minilang source as the
// function's implementation, running it through the same gates as a
// model completion — parse, syntactic check, deep static analysis,
// example-test validation — with zero LLM traffic. Static-analysis
// rejections are returned as *analysis.DiagError with per-diagnostic
// source positions.
func (f *Func) InstallSource(ctx context.Context, src string) (CompileStats, error) {
	info, err := f.inner.InstallSource(ctx, src)
	if err != nil {
		return CompileStats{}, err
	}
	return CompileStats{
		CompileTime: info.CompileTime,
		LOC:         info.LOC,
		Source:      info.Source,
	}, nil
}

// IsCompiled reports whether the function dispatches to generated code.
func (f *Func) IsCompiled() bool { return f.inner.IsCompiled() }

// Name returns the (derived or fixed) generated-function name.
func (f *Func) Name() string { return f.inner.Name() }

// Source returns the generated code once compiled.
func (f *Func) Source() (string, bool) { return f.inner.CompiledSource() }
