// Serve: the PR 2 serving tier in one program — a multi-backend router
// as the engine's client, a batch of direct tasks fanned over a worker
// pool, duplicate requests coalescing through the sharded answer cache,
// and the engine counters that make all of it observable.
package main

import (
	"context"
	"fmt"
	"log"

	askit "repro"
)

func main() {
	ctx := context.Background()

	// Three simulated backends behind one round-robin router, each
	// bounded to 8 in-flight requests.
	var backends []askit.RouterBackend
	for i := 0; i < 3; i++ {
		sim := askit.NewSimClient(int64(11 + i))
		sim.Noise.DirectBlind = 0
		backends = append(backends, askit.RouterBackend{
			Name:          fmt.Sprintf("sim-%d", i),
			Client:        sim,
			MaxConcurrent: 8,
		})
	}
	router, err := askit.NewRouter(backends...)
	if err != nil {
		log.Fatal(err)
	}

	ai, err := askit.New(askit.Options{
		Client:      router,
		Temperature: askit.Temp(0), // greedy decoding, now expressible
	})
	if err != nil {
		log.Fatal(err)
	}

	// A batch with heavy duplication: 32 elements, 8 distinct values.
	var batch []askit.Args
	for i := 0; i < 32; i++ {
		batch = append(batch, askit.Args{"n": float64(3 + i%8)})
	}
	results, err := ai.AskBatch(ctx, askit.Float,
		"Calculate the factorial of {{n}}.", batch, 16)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results[:8] {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("factorial(%v) = %v\n", batch[r.Index]["n"], r.Value)
	}

	stats := ai.Stats()
	fmt.Printf("\nengine: %d direct calls, %d model round-trips, %d served by cache, %d coalesced\n",
		stats.DirectCalls, stats.AnswerMisses, stats.AnswerHits, stats.AnswerCoalesced)
	rs := router.Stats()
	for _, b := range rs.Backends {
		fmt.Printf("router: %-6s served %d requests (%d failures)\n", b.Name, b.Requests, b.Failures)
	}
}
