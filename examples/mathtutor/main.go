// Mathtutor: the §IV-C GSM8K workflow in miniature. A word-problem
// template is answered directly by the LLM, then compiled to code and
// re-run with different values — the intersecting-task transition that
// produces Table III's speedup.
package main

import (
	"context"
	"fmt"
	"log"

	askit "repro"
)

func main() {
	ctx := context.Background()
	ai, err := askit.New(askit.Options{Client: askit.NewSimClient(3), Model: "gpt-4"})
	if err != nil {
		log.Fatal(err)
	}

	// Numeric values are template variables (the paper converts GSM8K's
	// literals into variables "since the generated programs are often
	// reused with different values").
	const problem = "{{name}} has {{a}} {{item}}. {{name}} buys {{b}} more {{item}} " +
		"and then gives away {{c}} {{item}}. How many {{item}} does {{name}} have left?"

	solve, err := ai.Define(askit.Float, problem,
		askit.WithParamTypes(
			askit.Field{Name: "name", Type: askit.Str},
			askit.Field{Name: "a", Type: askit.Float},
			askit.Field{Name: "item", Type: askit.Str},
			askit.Field{Name: "b", Type: askit.Float},
			askit.Field{Name: "c", Type: askit.Float},
		),
		// The original values validate the generated program.
		askit.WithTests(askit.Example{
			Input:  askit.Args{"name": "Natalia", "a": 48.0, "item": "clips", "b": 12.0, "c": 20.0},
			Output: 40.0,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	args := askit.Args{"name": "Natalia", "a": 48.0, "item": "clips", "b": 12.0, "c": 20.0}

	// Phase 1: the LLM answers at runtime.
	answer, direct, err := solve.CallInfo(ctx, args)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct answer: %v  (model latency %v, %d attempt(s))\n",
		answer, direct.ModelLatency, direct.Attempts)

	// Phase 2: compile once, then every call is native.
	if err := solve.Compile(ctx); err != nil {
		log.Fatal(err)
	}
	answer2, compiled, err := solve.CallInfo(ctx, args)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled answer: %v (exec %v)\n", answer2, compiled.ExecTime)
	if compiled.ExecTime > 0 {
		fmt.Printf("speedup: %.0fx\n", float64(direct.ModelLatency)/float64(compiled.ExecTime))
	}

	// Reuse with different values — no LLM in the loop at all.
	for _, a := range []float64{10, 100, 1000} {
		args["a"] = a
		v, err := solve.Call(ctx, args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("a=%4.0f -> %v\n", a, v)
	}
}
