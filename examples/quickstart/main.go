// Quickstart: the paper's motivating sentiment-analysis example (§II-A1)
// in three flavours — one-shot ask, a reusable define'd function, and
// the generic typed wrapper.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	ctx := context.Background()
	ai, err := askit.New(askit.Options{Client: askit.NewSimClient(1)})
	if err != nil {
		log.Fatal(err)
	}

	// 1. One-shot ask with type-guided output control: the union type
	// 'positive' | 'negative' replaces the hand-written "enclose the
	// sentiment in [ and ]" format instructions of the naive prompt
	// (paper §II-A1).
	sentiment, err := ai.Ask(ctx,
		askit.StrEnum("positive", "negative"),
		"What is the sentiment of {{review}}?",
		askit.Args{"review": "The product is fantastic. It exceeds all my expectations."})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sentiment:", sentiment)

	// 2. define: a reusable function backed by the LLM at runtime.
	getMax, err := ai.Define(askit.Float, "Find the largest number in {{ns}}.")
	if err != nil {
		log.Fatal(err)
	}
	for _, ns := range [][]any{{3.0, 9.0, 4.0}, {-5.0, -1.0}} {
		v, err := getMax.Call(ctx, askit.Args{"ns": ns})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max(%v) = %v\n", ns, v)
	}

	// 3. Generic wrapper: the AskIt type is derived from the Go type.
	isPrime, err := askit.AskAs[bool](ctx, ai,
		"Check if {{n}} is a prime number.", askit.Args{"n": 91})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("91 prime?", isPrime) // 7 x 13
}
