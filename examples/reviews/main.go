// Reviews: the paper's §II pipeline end to end — classify product
// reviews, then persist the results with a *codable* task (the CSV
// append of §II-A2) whose implementation the LLM writes once. It shows
// the unified interface: ask/define for directly answerable tasks and
// the same define + Compile for code generation, with no prompt change.
package main

import (
	"context"
	"fmt"
	"log"

	askit "repro"
)

func main() {
	ctx := context.Background()
	fs := askit.NewVirtualFS()
	ai, err := askit.New(askit.Options{
		Client: askit.NewSimClient(13),
		Model:  "gpt-4",
		FS:     fs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A directly answerable classification: is the review length odd or
	// even number of words? (A stand-in for sentiment that the simulated
	// model can answer exactly; the shape of the code is identical.)
	countWords, err := ai.Define(askit.Float, "Count the words in {{s}}.")
	if err != nil {
		log.Fatal(err)
	}

	// A codable task: append a row to a CSV file. Not directly
	// answerable — the LLM cannot touch the file system — but it can
	// write the code that does (paper Figure 2's third region).
	appendRow, err := ai.Define(askit.Void,
		"Append {{review}} and {{sentiment}} as a new row in the CSV file named {{filename}}",
		askit.WithParamTypes(
			askit.Field{Name: "review", Type: askit.Str},
			askit.Field{Name: "sentiment", Type: askit.Str},
			askit.Field{Name: "filename", Type: askit.Str},
		))
	if err != nil {
		log.Fatal(err)
	}
	// One call: the DSL compiler generates, validates and installs the
	// implementation. Every later call runs natively. Note that void
	// file tasks have no output examples to validate against — the
	// paper's §VI safety caveat — so reviewing Source() matters.
	if err := appendRow.Compile(ctx); err != nil {
		log.Fatal(err)
	}
	src, _ := appendRow.Source()
	fmt.Println("generated implementation:")
	fmt.Println(src)

	reviews := []string{
		"The product is fantastic. It exceeds all my expectations.",
		"Terrible quality, broke after one day.",
		"Decent value for the price.",
	}
	for _, review := range reviews {
		words, err := countWords.Call(ctx, askit.Args{"s": review})
		if err != nil {
			log.Fatal(err)
		}
		sentiment := "short"
		if words.(float64) > 5 {
			sentiment = "long"
		}
		if _, err := appendRow.Call(ctx, askit.Args{
			"review":    review,
			"sentiment": sentiment,
			"filename":  "reviews.csv",
		}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("reviews.csv:")
	content, _ := fs.Read("reviews.csv")
	fmt.Println(content)
}
