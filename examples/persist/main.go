// Persist: the PR 3 persistence tier in one program — two replica
// lifecycles over one artifact store. The first replica pays the LLM
// codegen loop and a direct model call, snapshots its answer cache,
// and exits; the second replica warm-starts from disk: the compiled
// function installs with zero codegen LLM calls and the memoized
// answer is served without model traffic.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	askit "repro"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "askit-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("== replica 1 (cold) ==")
	runReplica(ctx, dir, true)
	fmt.Println("\n== replica 2 (restarted, same store) ==")
	runReplica(ctx, dir, false)
}

// runReplica is one process lifecycle: define, compile, serve, and (on
// the cold replica) snapshot the answer cache before "exiting".
func runReplica(ctx context.Context, storePath string, cold bool) {
	sim := askit.NewSimClient(7)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := askit.New(askit.Options{
		Client:    sim,
		StorePath: storePath, // the persistence tier: one line
	})
	if err != nil {
		log.Fatal(err)
	}

	// A codable task: the first replica's Compile runs the LLM codegen
	// loop; the second replica's Compile re-installs the stored
	// artifact after revalidating it against the same example tests.
	fact, err := ai.Define(askit.Float, "Calculate the factorial of {{n}}.",
		askit.WithParamTypes(askit.Field{Name: "n", Type: askit.Float}),
		askit.WithTests(askit.Example{Input: askit.Args{"n": 5.0}, Output: 120.0}))
	if err != nil {
		log.Fatal(err)
	}
	stats, err := fact.CompileInfo(ctx)
	if err != nil {
		log.Fatal(err)
	}
	v, err := fact.Call(ctx, askit.Args{"n": 10.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorial(10) = %v  (compile: fromCache=%v, %d attempts)\n",
		v, stats.FromCache, stats.Attempts)

	// A direct call: memoized in the answer cache, which the cold
	// replica persists so the restarted one is warm here too.
	sentiment, err := ai.Ask(ctx, askit.StrEnum("positive", "negative"),
		"What is the sentiment of {{review}}?",
		askit.Args{"review": "The product is fantastic."})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sentiment = %v\n", sentiment)

	s := ai.Stats()
	fmt.Printf("codegen LLM calls: %d   store hits: %d   answers restored: %d   answer hits: %d\n",
		s.CodegenLLMCalls, s.StoreHits, s.AnswersRestored, s.AnswerHits)

	if cold {
		n, err := ai.SnapshotAnswers()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshotted %d memoized answers before exit\n", n)
	}
}
