// Books: typed structured extraction, the Listing 2 example. The
// response is constrained to { title; author; year }[] by the type
// system instead of prose format instructions, and decoded into Go
// structs by the generic wrapper.
package main

import (
	"context"
	"fmt"
	"log"

	askit "repro"
	"repro/internal/llm"
	"repro/internal/tasks"
	"repro/internal/types"
)

// Book mirrors the paper's `type Book = { title; author; year }`.
type Book struct {
	Title  string `json:"title"`
	Author string `json:"author"`
	Year   int    `json:"year"`
}

func main() {
	ctx := context.Background()
	sim := askit.NewSimClient(5)
	// The default simulated skills do arithmetic and list tasks; a
	// knowledge task needs its own solver, which is exactly how a
	// deployment would extend the sim for testing. Hosted clients need
	// no registration, of course.
	registerLibrarian(sim)

	ai, err := askit.New(askit.Options{Client: sim, Model: "gpt-4"})
	if err != nil {
		log.Fatal(err)
	}

	books, err := askit.AskAs[[]Book](ctx, ai,
		"List {{n}} classic books on {{subject}}.",
		askit.Args{"n": 3, "subject": "computer science"})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range books {
		fmt.Printf("%-40s %-20s %d\n", b.Title, b.Author, b.Year)
	}
}

// registerLibrarian adds a catalog entry + solver for the book-list
// task so the deterministic sim can answer it.
func registerLibrarian(sim *llm.Sim) {
	library := []map[string]any{
		{"title": "Structure and Interpretation of Computer Programs", "author": "Abelson & Sussman", "year": 1984.0},
		{"title": "The Art of Computer Programming", "author": "Donald Knuth", "year": 1968.0},
		{"title": "Types and Programming Languages", "author": "Benjamin Pierce", "year": 2002.0},
		{"title": "Compilers: Principles, Techniques, and Tools", "author": "Aho, Sethi & Ullman", "year": 1986.0},
	}
	sim.RegisterSolver(func(task string, args map[string]any) (any, bool) {
		key, names := tasks.NormalizeTask(task)
		if key != "list <1> classic books on <2>." || len(names) != 2 {
			return nil, false
		}
		n := int(asFloat(args[names[0]]))
		if n > len(library) {
			n = len(library)
		}
		out := make([]any, 0, n)
		for _, b := range library[:n] {
			out = append(out, b)
		}
		return out, true
	})
	_ = types.Str // keep the import meaningful for readers exploring types
}

func asFloat(v any) float64 {
	f, _ := v.(float64)
	return f
}
