// Httpserve: the PR 5 network tier in one program — an embedded askitd
// serving stack (engine + admission control + artifact store) on a
// loopback listener, driven purely over HTTP: install a function, call
// it natively, watch the counters, then drain gracefully and restart
// warm from the store with zero codegen LLM calls.
//
// The standalone daemon is `go run ./cmd/askitd`; this example embeds
// the same internal/server package so it can show the restart cycle in
// one process.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	askit "repro"
	"repro/internal/server"
)

const installFact = `{
  "name": "fact", "type": "number",
  "template": "Calculate the factorial of {{n}}.",
  "params": [{"name": "n", "type": "number"}],
  "tests": [{"input": {"n": 5}, "output": 120}]}`

func main() {
	dir, err := os.MkdirTemp("", "askit-httpserve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Lifecycle 1: cold start. Installing fact pays the codegen loop.
	url, drain := startDaemon(dir)
	fmt.Println("cold install:", post(url+"/v1/funcs", installFact))
	fmt.Println("call:        ", post(url+"/v1/funcs/fact/call", `{"args":{"n":10}}`))
	fmt.Println("ask:         ", post(url+"/v1/ask",
		`{"type":"number","template":"Calculate the factorial of {{n}}.","args":{"n":5}}`))
	drain() // graceful: finish in-flight, snapshot answers, close store

	// Lifecycle 2: warm restart over the same store. The install is a
	// store hit — no model involved — and the memoized answer survives.
	url, drain = startDaemon(dir)
	fmt.Println("\nwarm install:", post(url+"/v1/funcs", installFact))
	stats := post(url + "/v1/stats")
	for _, want := range []string{`"codegen_llm_calls":0`, `"store_hits":1`} {
		if !strings.Contains(stats, want) {
			log.Fatalf("warm restart stats missing %s: %s", want, stats)
		}
	}
	fmt.Println("warm restart made zero codegen LLM calls")
	drain()
}

// startDaemon boots the serving stack on a loopback port and returns
// its base URL plus a graceful-shutdown func.
func startDaemon(storeDir string) (string, func()) {
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := askit.New(askit.Options{Client: sim, StorePath: storeDir})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{AskIt: ai, MaxInflight: 64})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		if _, err := srv.Drain(context.Background()); err != nil {
			log.Fatal(err)
		}
		httpSrv.Close()
	}
}

func post(url string, body ...string) string {
	var resp *http.Response
	var err error
	if len(body) > 0 {
		resp, err = http.Post(url, "application/json", strings.NewReader(body[0]))
	} else {
		resp, err = http.Get(url)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(string(data))
}
