// Batch: the §III-D compilation workflow at module granularity — a
// group of define sites compiled together (the paper's "specify the
// name of a source file" mode), persisted in the askit/ cache directory
// so a second run generates nothing.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	askit "repro"
)

func main() {
	ctx := context.Background()
	cacheDir := filepath.Join(os.TempDir(), "askit-batch-cache")
	fmt.Println("cache:", cacheDir)

	for run := 1; run <= 2; run++ {
		ai, err := askit.New(askit.Options{
			Client:   askit.NewSimClient(21),
			Model:    "gpt-3.5-turbo-16k",
			CacheDir: cacheDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		m := ai.Module()

		slug, err := m.Define(askit.Str, "Convert the string {{s}} to camelCase.",
			askit.WithParamTypes(askit.Field{Name: "s", Type: askit.Str}),
			askit.WithTests(askit.Example{Input: askit.Args{"s": "hello world"}, Output: "helloWorld"}))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := m.Define(askit.Float, "Find the median of the numbers {{ns}}.",
			askit.WithParamTypes(askit.Field{Name: "ns", Type: askit.List(askit.Float)}),
			askit.WithTests(askit.Example{Input: askit.Args{"ns": []any{3.0, 1.0, 2.0}}, Output: 2.0}))
		if err != nil {
			log.Fatal(err)
		}
		check, err := m.Define(askit.Bool, "Check if the year {{y}} is a leap year.",
			askit.WithParamTypes(askit.Field{Name: "y", Type: askit.Float}),
			askit.WithTests(askit.Example{Input: askit.Args{"y": 2024.0}, Output: true}))
		if err != nil {
			log.Fatal(err)
		}

		// Compile the whole "file" at once.
		if err := m.CompileAll(ctx); err != nil {
			log.Fatal(err)
		}
		fromCache := 0
		for _, f := range m.Funcs() {
			info, err := f.CompileInfo(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if info.FromCache {
				fromCache++
			}
		}
		fmt.Printf("run %d: %d/%d functions came from the disk cache\n",
			run, fromCache, len(m.Funcs()))

		v1, _ := slug.Call(ctx, askit.Args{"s": "ask it unified interface"})
		v2, _ := stats.Call(ctx, askit.Args{"ns": []any{9.0, 1.0, 5.0, 3.0}})
		v3, _ := check.Call(ctx, askit.Args{"y": 1900.0})
		fmt.Printf("  camelCase -> %v, median -> %v, leap(1900) -> %v\n", v1, v2, v3)
	}
}
