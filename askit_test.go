package askit

import (
	"context"
	"strings"
	"testing"
)

func newAI(t *testing.T) *AskIt {
	t.Helper()
	sim := NewSimClient(42)
	// Keep the formatting noise (it exercises the retry loop) but
	// disable capability blind spots so the API tests are about the
	// engine, not about which tasks this seed's "model" can solve.
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := New(Options{Client: sim, Model: "gpt-4"})
	if err != nil {
		t.Fatal(err)
	}
	return ai
}

func TestAskTyped(t *testing.T) {
	ai := newAI(t)
	v, err := ai.Ask(context.Background(), Str,
		"Reverse the string {{s}}.", Args{"s": "askit"})
	if err != nil {
		t.Fatal(err)
	}
	if v != "tiksa" {
		t.Errorf("v = %v", v)
	}
}

func TestAskList(t *testing.T) {
	ai := newAI(t)
	v, err := ai.Ask(context.Background(), List(Float),
		"Sort the numbers {{ns}} in ascending order.", Args{"ns": []any{3.0, 1.0, 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]any)
	if len(got) != 3 || got[0] != 1.0 || got[2] != 3.0 {
		t.Errorf("v = %v", v)
	}
}

func TestAskAsGeneric(t *testing.T) {
	ai := newAI(t)
	n, err := AskAs[int](context.Background(), ai,
		"Calculate the factorial of {{n}}.", Args{"n": 6})
	if err != nil {
		t.Fatal(err)
	}
	if n != 720 {
		t.Errorf("n = %d", n)
	}
	ok, err := AskAs[bool](context.Background(), ai,
		"Check if {{n}} is a prime number.", Args{"n": 17})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("17 should be prime")
	}
}

func TestDefineReuse(t *testing.T) {
	ai := newAI(t)
	getMax, err := ai.Define(Float, "Find the largest number in {{ns}}.")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		in   []any
		want float64
	}{
		{[]any{1.0, 9.0, 4.0}, 9},
		{[]any{-5.0, -2.0}, -2},
	} {
		v, err := getMax.Call(context.Background(), Args{"ns": c.in})
		if err != nil {
			t.Fatal(err)
		}
		if v != c.want {
			t.Errorf("max(%v) = %v, want %v", c.in, v, c.want)
		}
	}
}

func TestDefineCompileTransition(t *testing.T) {
	// The paper's headline workflow: same template, direct first, then
	// compiled — with no change to the prompt template.
	ai := newAI(t)
	fib, err := ai.Define(List(Float), "Generate the Fibonacci sequence up to {{n}}.",
		WithParamTypes(Field{Name: "n", Type: Float}),
		WithTests(Example{Input: Args{"n": 10.0}, Output: []any{0.0, 1.0, 1.0, 2.0, 3.0, 5.0, 8.0}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	direct, info1, err := fib.CallInfo(context.Background(), Args{"n": 20})
	if err != nil {
		t.Fatal(err)
	}
	if info1.Compiled {
		t.Error("first call should be direct")
	}
	if info1.ModelLatency <= 0 {
		t.Error("direct call must report model latency")
	}
	if err := fib.Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	compiled, info2, err := fib.CallInfo(context.Background(), Args{"n": 20})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Compiled {
		t.Error("post-compile call should run generated code")
	}
	if info2.ExecTime <= 0 {
		t.Error("compiled call must report exec time")
	}
	a, b := direct.([]any), compiled.([]any)
	if len(a) != len(b) {
		t.Fatalf("direct %v vs compiled %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("results differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Table III's claim, in miniature: native execution is orders of
	// magnitude faster than the model round-trip.
	if info2.ExecTime*1000 > info1.ModelLatency {
		t.Errorf("speedup too small: latency=%v exec=%v", info1.ModelLatency, info2.ExecTime)
	}
	src, ok := fib.Source()
	if !ok || !strings.Contains(src, "function") {
		t.Errorf("Source = %q, %v", src, ok)
	}
}

func TestVirtualFSIntegration(t *testing.T) {
	fs := NewVirtualFS()
	sim := NewSimClient(42)
	ai, err := New(Options{Client: sim, Model: "gpt-4", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendReview, err := ai.Define(Void,
		"Append {{review}} and {{sentiment}} as a new row in the CSV file named {{filename}}",
		WithParamTypes(
			Field{Name: "review", Type: Str},
			Field{Name: "sentiment", Type: Str},
			Field{Name: "filename", Type: Str},
		))
	if err != nil {
		t.Fatal(err)
	}
	if err := appendReview.Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := appendReview.Call(context.Background(), Args{
			"review": "Great!", "sentiment": "positive", "filename": "out.csv",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fs.Lines("out.csv")); got != 3 {
		t.Errorf("rows = %d, want 3", got)
	}
}

func TestCompileStats(t *testing.T) {
	ai := newAI(t)
	f, err := ai.Define(Float, "Calculate the sum of all numbers in {{ns}}.",
		WithParamTypes(Field{Name: "ns", Type: List(Float)}),
		WithTests(Example{Input: Args{"ns": []any{1.0, 2.0}}, Output: 3.0}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := f.CompileInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.LOC < 1 || stats.Attempts < 1 || stats.CompileTime <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if !strings.Contains(stats.Source, "reduce") && !strings.Contains(stats.Source, "for") {
		t.Errorf("unexpected source:\n%s", stats.Source)
	}
}

func TestNewRequiresClient(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestStorePathWarmRestart(t *testing.T) {
	dir := t.TempDir()
	newWarmable := func() (*AskIt, *Func) {
		sim := NewSimClient(42)
		sim.Noise.DirectBlind = 0
		sim.Noise.CodegenBlind = 0
		ai, err := New(Options{Client: sim, Model: "gpt-4", StorePath: dir})
		if err != nil {
			t.Fatal(err)
		}
		f, err := ai.Define(Float, "Calculate the factorial of {{n}}.",
			WithParamTypes(Field{Name: "n", Type: Float}),
			WithTests(Example{Input: Args{"n": 5.0}, Output: 120.0}))
		if err != nil {
			t.Fatal(err)
		}
		return ai, f
	}

	// Cold replica: compile, serve a direct call, snapshot.
	cold, f := newWarmable()
	if err := f.Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cold.Stats().CodegenLLMCalls == 0 {
		t.Error("cold compile was free")
	}
	if _, err := cold.Ask(context.Background(), Str, "Reverse the string {{s}}.", Args{"s": "warm"}); err != nil {
		t.Fatal(err)
	}
	if n, err := cold.SnapshotAnswers(); err != nil || n == 0 {
		t.Fatalf("snapshot: n=%d err=%v", n, err)
	}

	// Warm replica over the same StorePath: compiled function and
	// memoized answer both come back with zero model traffic.
	warm, g := newWarmable()
	if err := g.Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	v, err := g.Call(context.Background(), Args{"n": 6.0})
	if err != nil || v != 720.0 {
		t.Fatalf("warm call: %v, %v", v, err)
	}
	ans, err := warm.Ask(context.Background(), Str, "Reverse the string {{s}}.", Args{"s": "warm"})
	if err != nil || ans != "mraw" {
		t.Fatalf("warm ask: %v, %v", ans, err)
	}
	s := warm.Stats()
	if s.CodegenLLMCalls != 0 {
		t.Errorf("warm restart made %d codegen LLM calls, want 0", s.CodegenLLMCalls)
	}
	if s.StoreHits != 1 || s.AnswersRestored == 0 || s.AnswerHits == 0 {
		t.Errorf("warm stats = %+v", s)
	}
}

func TestWithStoreShares(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *AskIt {
		sim := NewSimClient(42)
		sim.Noise.CodegenBlind = 0
		ai, err := New(Options{Client: sim, Model: "gpt-4"}.WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return ai
	}
	define := func(ai *AskIt) *Func {
		f, err := ai.Define(Float, "Calculate the factorial of {{n}}.",
			WithParamTypes(Field{Name: "n", Type: Float}),
			WithTests(Example{Input: Args{"n": 5.0}, Output: 120.0}))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := mk(), mk()
	if err := define(a).Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The second engine shares the store: its compile is a store hit.
	if err := define(b).Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := b.Stats(); s.CodegenLLMCalls != 0 || s.StoreHits != 1 {
		t.Errorf("shared-store stats = %+v", s)
	}
}

func TestTypeReExports(t *testing.T) {
	book := Dict(
		Field{Name: "title", Type: Str},
		Field{Name: "year", Type: Int},
	)
	if got := List(book).TS(); got != "{ title: string; year: number }[]" {
		t.Errorf("TS = %q", got)
	}
	u, err := ParseTS("'a' | 'b'")
	if err != nil || u.TS() != "'a' | 'b'" {
		t.Errorf("ParseTS: %v %v", u, err)
	}
}
