package askit

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestModuleCompileAll(t *testing.T) {
	ai := newAI(t)
	m := ai.Module()
	rev, err := m.Define(Str, "Reverse the string {{s}}.",
		WithParamTypes(Field{Name: "s", Type: Str}),
		WithTests(Example{Input: Args{"s": "ab"}, Output: "ba"}))
	if err != nil {
		t.Fatal(err)
	}
	fact, err := m.Define(Float, "Calculate the factorial of {{n}}.",
		WithParamTypes(Field{Name: "n", Type: Float}),
		WithTests(Example{Input: Args{"n": 4.0}, Output: 24.0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CompileAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Func{rev, fact} {
		if !f.IsCompiled() {
			t.Errorf("%s not compiled by CompileAll", f.Name())
		}
	}
	v, err := rev.Call(context.Background(), Args{"s": "module"})
	if err != nil || v != "eludom" {
		t.Errorf("rev = %v, %v", v, err)
	}
}

func TestModuleCompileOnly(t *testing.T) {
	ai := newAI(t)
	m := ai.Module()
	a, err := m.Define(Float, "Calculate the sum of all numbers in {{ns}}.",
		WithParamTypes(Field{Name: "ns", Type: List(Float)}), WithName("sumAll"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Define(Float, "Find the largest number in {{ns}}.",
		WithParamTypes(Field{Name: "ns", Type: List(Float)}), WithName("findMax"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CompileOnly(context.Background(), "sumAll"); err != nil {
		t.Fatal(err)
	}
	if !a.IsCompiled() {
		t.Error("sumAll should be compiled")
	}
	if b.IsCompiled() {
		t.Error("findMax should remain in direct mode")
	}
	err = m.CompileOnly(context.Background(), "noSuchFunc")
	if err == nil || !strings.Contains(err.Error(), "noSuchFunc") {
		t.Errorf("err = %v", err)
	}
}

func TestModuleCollectsFailures(t *testing.T) {
	sim := NewSimClient(42)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := New(Options{Client: sim, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := ai.Module()
	good, err := m.Define(Str, "Reverse the string {{s}}.",
		WithParamTypes(Field{Name: "s", Type: Str}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Define(Str, "Compose a haiku about {{topic}}."); err != nil {
		t.Fatal(err)
	}
	err = m.CompileAll(context.Background())
	if err == nil {
		t.Fatal("expected a failure for the uncodable task")
	}
	if !good.IsCompiled() {
		t.Error("the codable task should still compile")
	}
}

func TestModuleDuplicateName(t *testing.T) {
	ai := newAI(t)
	m := ai.Module()
	if _, err := m.Define(Str, "Reverse the string {{s}}.", WithName("f")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Define(Str, "Count the words in {{s}}.", WithName("f")); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestFuncConcurrentCalls(t *testing.T) {
	ai := newAI(t)
	f, err := ai.Define(Float, "Calculate the factorial of {{n}}.",
		WithParamTypes(Field{Name: "n", Type: Float}),
		WithTests(Example{Input: Args{"n": 5.0}, Output: 120.0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Compile(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			v, err := f.Call(context.Background(), Args{"n": 6})
			if err != nil {
				errs <- err
				return
			}
			if v != 720.0 {
				errs <- errf("got %v", v)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
