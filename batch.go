package askit

import (
	"context"
	"runtime"
	"sync"
)

// BatchResult is one element's outcome in a batch call. Results are
// returned in input order; each element carries its own error, so one
// failed task does not discard the rest of the batch.
type BatchResult struct {
	// Index is the position of the Args element in the input slice.
	Index int
	// Value is the decoded answer when Err is nil.
	Value any
	// Err is the element's failure, if any.
	Err error
}

// CallBatch fans argsList over a worker pool and executes the task for
// each element, returning per-element results in input order. workers
// bounds the concurrency; <=0 means runtime.GOMAXPROCS(0). Identical
// elements coalesce through the engine's answer cache, so a batch with
// duplicates pays one model round-trip per distinct element. A canceled
// ctx stops scheduling new elements; already-started elements report
// their own cancellation errors.
func (f *Func) CallBatch(ctx context.Context, argsList []Args, workers int) []BatchResult {
	results := make([]BatchResult, len(argsList))
	if len(argsList) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(argsList) {
		workers = len(argsList)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					// Dispatched in the same instant the context died:
					// this element never started, report it canceled.
					results[i] = BatchResult{Index: i, Err: err}
					continue
				}
				v, err := f.Call(ctx, argsList[i])
				results[i] = BatchResult{Index: i, Value: v, Err: err}
			}
		}()
	}
	for i := range argsList {
		if err := ctx.Err(); err != nil {
			results[i] = BatchResult{Index: i, Err: err}
			continue
		}
		// The send races the context: with all workers busy, a plain
		// `next <- i` would sit blocked through a mid-batch cancellation
		// until a worker happened to free up, and the element would then
		// be started against a dead context instead of being reported as
		// canceled.
		select {
		case next <- i:
		case <-ctx.Done():
			results[i] = BatchResult{Index: i, Err: ctx.Err()}
		}
	}
	close(next)
	wg.Wait()
	return results
}

// AskBatch answers one directly answerable task for every element of
// argsList concurrently: Define once, then CallBatch. The returned
// error covers template problems only; per-element failures are
// reported in the results.
func (a *AskIt) AskBatch(ctx context.Context, ret Type, promptTemplate string, argsList []Args, workers int) ([]BatchResult, error) {
	f, err := a.Define(ret, promptTemplate)
	if err != nil {
		return nil, err
	}
	return f.CallBatch(ctx, argsList, workers), nil
}
