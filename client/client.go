// Package client is the typed Go SDK for the askit daemon's /v1 wire
// surface (and for askit-gw, which serves the same API). It speaks the
// shared api types exclusively — request building, envelope decoding,
// and error classification live here once, instead of being hand-rolled
// in every consumer (gateway, bench harness, smoke tooling).
//
// Error contract: a non-2xx response decodes into *APIError, wrapped so
// the llm package's classifiers keep working across the network
// boundary — llm.IsTransient reports whether retrying the identical
// request can succeed (the envelope's transient flag), and a 429/503
// Retry-After header surfaces through llm.RetryAfterHint. Trace
// context propagates automatically: when ctx carries an obs span (or an
// explicit WithTraceparent override) its traceparent header is injected,
// and the server's X-Trace-Id echo comes back in Result.TraceID.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/api"
	"repro/internal/llm"
	"repro/internal/obs"
)

// maxErrBodyBytes bounds how much of an error response body is read;
// envelopes are small, and a misbehaving server must not OOM a client.
const maxErrBodyBytes = 1 << 20

// Client talks to one askitd (or askit-gw) base URL.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transport, timeout, fault injection).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for baseURL ("http://127.0.0.1:8080"; a
// trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response decoded from the uniform error
// envelope. It is usually wrapped for classification — test it with
// errors.As, and the retry decision with llm.IsTransient /
// llm.RetryAfterHint rather than by status code.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Envelope is the decoded error body. For a response whose body was
	// not a valid envelope (a crashed proxy, a non-askit server), Kind
	// is "bad-envelope" and Message holds a body prefix.
	Envelope api.Error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s (kind=%s, http %d)", e.Envelope.Message, e.Envelope.Kind, e.Status)
}

// Kind returns err's envelope kind ("" when err carries no *APIError).
func Kind(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Envelope.Kind
	}
	return ""
}

// traceparentKey carries an explicit WithTraceparent override.
type traceparentKey struct{}

// WithTraceparent pins the exact traceparent header Do will send,
// overriding the ambient obs span. For callers that mint their own
// trace ids (test harnesses, upstream proxies).
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, traceparentKey{}, traceparent)
}

// Result is the per-call response metadata alongside the decoded body.
type Result struct {
	// Status is the HTTP status code.
	Status int
	// TraceID is the server's X-Trace-Id echo — set when the request
	// joined a trace or won the server's head sample; empty otherwise.
	TraceID string
	// RetryAfter is the parsed Retry-After hint, 0 when absent.
	RetryAfter time.Duration
}

// Do performs one API call: method+path against the base URL, in
// marshaled as the JSON body (nil: no body; json.RawMessage/[]byte:
// sent verbatim), out decoded from a 2xx body (nil: body discarded).
// Non-2xx responses return a classified error; the Result is valid
// whenever the HTTP exchange itself completed.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) (Result, error) {
	var body io.Reader
	switch v := in.(type) {
	case nil:
	case json.RawMessage:
		body = bytes.NewReader(v)
	case []byte:
		body = bytes.NewReader(v)
	default:
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(v); err != nil {
			return Result{}, fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
		body = &buf
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return Result{}, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp, _ := ctx.Value(traceparentKey{}).(string); tp != "" {
		req.Header.Set("traceparent", tp)
	} else if tp := obs.SpanFromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}

	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failures (reset, refused, timeout) are retryable by
		// definition: the request may never have reached a server.
		// Context cancellation passes through unclassified so callers'
		// IsCancellation checks still see it.
		if ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{}, llm.MarkTransient(fmt.Errorf("client: %s %s: %w", method, path, err))
	}
	defer resp.Body.Close()
	res := Result{
		Status:     resp.StatusCode,
		TraceID:    resp.Header.Get("X-Trace-Id"),
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return res, decodeAPIError(resp, res)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return res, fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
	}
	return res, nil
}

// decodeAPIError turns a non-2xx response into a classified error:
// *APIError wrapped transient (and Retry-After-hinted) exactly as the
// envelope instructs, so llm.IsTransient and llm.RetryAfterHint work
// unchanged across the network boundary.
func decodeAPIError(resp *http.Response, res Result) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBodyBytes))
	ae := &APIError{Status: resp.StatusCode}
	if err := json.Unmarshal(raw, &ae.Envelope); err != nil || ae.Envelope.Kind == "" {
		prefix := raw
		if len(prefix) > 200 {
			prefix = prefix[:200]
		}
		ae.Envelope = api.Error{
			Message: fmt.Sprintf("http %d: %s", resp.StatusCode, bytes.TrimSpace(prefix)),
			Kind:    "bad-envelope",
			// A malformed envelope on an overload/unavailable status is
			// still worth retrying; client errors are not.
			Transient: resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500,
		}
	}
	var err error = ae
	if ae.Envelope.Transient {
		if res.RetryAfter > 0 {
			err = llm.WithRetryAfter(err, res.RetryAfter)
		} else {
			err = llm.MarkTransient(err)
		}
	}
	return err
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// ---------------------------------------------------------------------------
// Typed surface, one method per route.

// Ask answers one directly answerable task: POST /v1/ask.
func (c *Client) Ask(ctx context.Context, typ, template string, args map[string]any, examples ...api.Example) (any, error) {
	var out api.AskResponse
	_, err := c.Do(ctx, http.MethodPost, "/v1/ask",
		api.AskRequest{Type: typ, Template: template, Args: args, Examples: examples}, &out)
	return out.Value, err
}

// AskBatch fans one template over an args list: POST /v1/ask/batch.
func (c *Client) AskBatch(ctx context.Context, req api.AskBatchRequest) (api.BatchResponse, error) {
	var out api.BatchResponse
	_, err := c.Do(ctx, http.MethodPost, "/v1/ask/batch", req, &out)
	return out, err
}

// Install defines (and by default compiles) a task function:
// POST /v1/funcs.
func (c *Client) Install(ctx context.Context, req api.InstallRequest) (api.InstallResponse, error) {
	var out api.InstallResponse
	_, err := c.Do(ctx, http.MethodPost, "/v1/funcs", req, &out)
	return out, err
}

// InstallSource installs a client-supplied minilang implementation —
// zero model traffic; the source still passes the full static gate.
func (c *Client) InstallSource(ctx context.Context, req api.InstallRequest, source string) (api.InstallResponse, error) {
	req.Source = source
	return c.Install(ctx, req)
}

// Call invokes an installed function: POST /v1/funcs/{name}/call.
func (c *Client) Call(ctx context.Context, name string, args map[string]any) (api.CallResponse, error) {
	var out api.CallResponse
	_, err := c.Do(ctx, http.MethodPost, "/v1/funcs/"+name+"/call", api.CallRequest{Args: args}, &out)
	return out, err
}

// CallBatch fans an installed function over an args list:
// POST /v1/funcs/{name}/batch.
func (c *Client) CallBatch(ctx context.Context, name string, req api.CallBatchRequest) (api.BatchResponse, error) {
	var out api.BatchResponse
	_, err := c.Do(ctx, http.MethodPost, "/v1/funcs/"+name+"/batch", req, &out)
	return out, err
}

// Funcs lists installed functions: GET /v1/funcs.
func (c *Client) Funcs(ctx context.Context) (api.FuncListResponse, error) {
	var out api.FuncListResponse
	_, err := c.Do(ctx, http.MethodGet, "/v1/funcs", nil, &out)
	return out, err
}

// Stats fetches the server/engine/router counters: GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	_, err := c.Do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Health fetches /healthz. Unlike every other route, a 503 here is a
// meaningful payload (a draining replica), not an error envelope — the
// response decodes regardless of status and the error is non-nil only
// for transport or decode failures. Check HealthResponse.Status.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		return out, llm.MarkTransient(fmt.Errorf("client: healthz: %w", err))
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: decode healthz: %w", err)
	}
	return out, nil
}

// GatewayHealth fetches /healthz from an askit-gw, whose health shape
// differs from a replica's. Like Health, a 503 (draining or degraded
// fleet) is a meaningful payload, not an error envelope.
func (c *Client) GatewayHealth(ctx context.Context) (api.GatewayHealthResponse, error) {
	var out api.GatewayHealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return out, fmt.Errorf("client: healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		return out, llm.MarkTransient(fmt.Errorf("client: healthz: %w", err))
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: decode healthz: %w", err)
	}
	return out, nil
}

// Traces lists retained trace summaries: GET /v1/traces. limit <= 0
// keeps the server default.
func (c *Client) Traces(ctx context.Context, limit int) (api.TraceListResponse, error) {
	path := "/v1/traces"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out api.TraceListResponse
	_, err := c.Do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Trace fetches one retained trace's span tree: GET /v1/traces/{id}.
func (c *Client) Trace(ctx context.Context, id string) (api.TraceResponse, error) {
	var out api.TraceResponse
	_, err := c.Do(ctx, http.MethodGet, "/v1/traces/"+id, nil, &out)
	return out, err
}
