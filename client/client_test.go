package client

// Contract tests against a live internal/server instance: the typed
// SDK and the serving tier must agree on the wire — classified error
// mapping, Retry-After propagation, and traceparent echo — or the
// gateway built on this client inherits the disagreement.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	askit "repro"
	"repro/api"
	"repro/internal/llm"
	"repro/internal/server"
)

// newTestDaemon boots a server over a quiet simulated backend and
// returns a Client pointed at it.
func newTestDaemon(t *testing.T, cfg server.Config) (*Client, *server.Server) {
	t.Helper()
	if cfg.AskIt == nil {
		sim := askit.NewSimClient(1)
		sim.Noise.DirectBlind = 0
		sim.Noise.CodegenBlind = 0
		ai, err := askit.New(askit.Options{Client: sim})
		if err != nil {
			t.Fatal(err)
		}
		cfg.AskIt = ai
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL + "/"), srv // trailing slash: New must normalize
}

func TestTypedRoundtrip(t *testing.T) {
	c, _ := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	v, err := c.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 5})
	if err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if v != float64(120) {
		t.Fatalf("Ask = %v (%T), want 120", v, v)
	}

	inst, err := c.Install(ctx, api.InstallRequest{
		Name: "fact", Type: "number", Template: "Calculate the factorial of {{n}}.",
		Params:   []api.Param{{Name: "n", Type: "number"}},
		Examples: []api.Example{{Input: map[string]any{"n": 3}, Output: 6}},
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if inst.Name != "fact" || !inst.Compiled {
		t.Fatalf("Install = %+v, want compiled fact", inst)
	}

	call, err := c.Call(ctx, "fact", map[string]any{"n": 10})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if call.Value != float64(3628800) || !call.Compiled {
		t.Fatalf("Call = %+v, want 3628800 compiled", call)
	}

	batch, err := c.CallBatch(ctx, "fact", api.CallBatchRequest{
		ArgsList: []map[string]any{{"n": 1}, {"n": 4}},
	})
	if err != nil {
		t.Fatalf("CallBatch: %v", err)
	}
	if batch.Errors != 0 || len(batch.Results) != 2 || batch.Results[1].Value != float64(24) {
		t.Fatalf("CallBatch = %+v", batch)
	}

	funcs, err := c.Funcs(ctx)
	if err != nil {
		t.Fatalf("Funcs: %v", err)
	}
	if len(funcs.Funcs) != 1 || funcs.Funcs[0].Name != "fact" {
		t.Fatalf("Funcs = %+v", funcs)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Server.Admitted == 0 || stats.Funcs != 1 || stats.Engine == nil {
		t.Fatalf("Stats = %+v", stats)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("Health.Status = %q, want ok", h.Status)
	}
}

// TestErrorMapping is the classified-error table: each wire failure
// must decode to the right kind, status, and llm classification.
func TestErrorMapping(t *testing.T) {
	c, _ := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	if _, err := c.Install(ctx, api.InstallRequest{Name: "dup", Type: "number", Template: "Calculate the factorial of {{n}}."}); err != nil {
		t.Fatalf("seed install: %v", err)
	}

	cases := []struct {
		name      string
		invoke    func() error
		kind      string
		status    int
		transient bool
	}{
		{
			name:   "bad type",
			invoke: func() error { _, err := c.Ask(ctx, "not a type!!", "t", nil); return err },
			kind:   api.KindBadType, status: http.StatusBadRequest,
		},
		{
			name: "bad json body",
			invoke: func() error {
				_, err := c.Do(ctx, http.MethodPost, "/v1/ask", []byte("{"), nil)
				return err
			},
			kind: api.KindBadJSON, status: http.StatusBadRequest,
		},
		{
			name:   "unknown func",
			invoke: func() error { _, err := c.Call(ctx, "nope", nil); return err },
			kind:   api.KindUnknownFunc, status: http.StatusNotFound,
		},
		{
			name: "name taken",
			invoke: func() error {
				_, err := c.Install(ctx, api.InstallRequest{Name: "dup", Type: "string", Template: "Summarize {{x}}."})
				return err
			},
			kind: api.KindNameTaken, status: http.StatusConflict,
		},
		{
			name: "batch too large",
			invoke: func() error {
				_, err := c.AskBatch(ctx, api.AskBatchRequest{
					Type: "number", Template: "t {{n}}", ArgsList: make([]map[string]any, 5000),
				})
				return err
			},
			kind: api.KindBatchTooLarge, status: http.StatusBadRequest,
		},
	}
	for _, tc := range cases {
		err := tc.invoke()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Errorf("%s: error %v carries no *APIError", tc.name, err)
			continue
		}
		if ae.Envelope.Kind != tc.kind || ae.Status != tc.status {
			t.Errorf("%s: kind=%q status=%d, want %q/%d", tc.name, ae.Envelope.Kind, ae.Status, tc.kind, tc.status)
		}
		if got := Kind(err); got != tc.kind {
			t.Errorf("%s: Kind(err) = %q, want %q", tc.name, got, tc.kind)
		}
		if llm.IsTransient(err) != tc.transient {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, llm.IsTransient(err), tc.transient)
		}
	}
}

// blockingClient parks Complete calls until the gate closes, then
// delegates — it holds an admission slot open on demand. entered
// closes when the first call is parked inside the backend.
type blockingClient struct {
	inner   llm.Client
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *blockingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	b.once.Do(func() { close(b.entered) })
	select {
	case <-b.gate:
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return b.inner.Complete(ctx, req)
}

// TestRetryAfterPropagation drives the server into admission overload
// and asserts the 429's classification crosses the SDK intact:
// transient, kind saturated, and the Retry-After hint readable through
// llm.RetryAfterHint.
func TestRetryAfterPropagation(t *testing.T) {
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	gate := make(chan struct{})
	blocker := &blockingClient{inner: sim, gate: gate, entered: make(chan struct{})}
	ai, err := askit.New(askit.Options{Client: blocker})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := newTestDaemon(t, server.Config{
		AskIt:       ai,
		MaxInflight: 1,
		RetryAfter:  2 * time.Second,
	})
	ctx := context.Background()

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 3})
		firstDone <- err
	}()

	// Wait until the first request is parked inside the backend — it
	// provably holds the only admission slot — then overflow it.
	select {
	case <-blocker.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the backend")
	}
	_, overflowErr := c.Ask(ctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 4})
	close(gate)
	if overflowErr == nil {
		t.Fatal("never saw an admission rejection")
	}
	var ae *APIError
	if !errors.As(overflowErr, &ae) || ae.Status != http.StatusTooManyRequests || ae.Envelope.Kind != api.KindSaturated {
		t.Fatalf("overflow error = %v, want 429 saturated", overflowErr)
	}
	if !llm.IsTransient(overflowErr) {
		t.Fatalf("429 not classified transient: %v", overflowErr)
	}
	if d, ok := llm.RetryAfterHint(overflowErr); !ok || d != 2*time.Second {
		t.Fatalf("RetryAfterHint = %v/%v, want 2s", d, ok)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
}

func TestTraceparentEchoAndErrorTraceID(t *testing.T) {
	c, srv := newTestDaemon(t, server.Config{TraceSample: 1.0})
	ctx := context.Background()

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	tctx := WithTraceparent(ctx, "00-"+tid+"-00f067aa0ba902b7-01")

	// A joined trace echoes the caller's id on success...
	res, err := c.Do(tctx, http.MethodPost, "/v1/ask",
		api.AskRequest{Type: "number", Template: "Calculate the factorial of {{n}}.", Args: map[string]any{"n": 5}}, nil)
	if err != nil {
		t.Fatalf("traced ask: %v", err)
	}
	if res.TraceID != tid {
		t.Fatalf("TraceID = %q, want %q", res.TraceID, tid)
	}

	// ...and error envelopes carry it too (satellite: every error
	// response carries the request's trace id when sampled).
	_, err = c.Call(tctx, "missing", nil)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("unknown-func error = %v", err)
	}
	if ae.Envelope.TraceID != tid {
		t.Fatalf("error envelope trace_id = %q, want %q", ae.Envelope.TraceID, tid)
	}

	// Head-sampled (sample=1.0) requests get a fresh id without the
	// caller bringing one.
	res, err = c.Do(ctx, http.MethodPost, "/v1/ask",
		api.AskRequest{Type: "number", Template: "Calculate the factorial of {{n}}.", Args: map[string]any{"n": 6}}, nil)
	if err != nil {
		t.Fatalf("sampled ask: %v", err)
	}
	if res.TraceID == "" {
		t.Fatal("head-sampled request echoed no X-Trace-Id")
	}

	// Admission rejections happen before a root span exists; a caller
	// that brought a trace still gets its id in the envelope.
	if _, err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err = c.Ask(tctx, "number", "Calculate the factorial of {{n}}.", map[string]any{"n": 7})
	if !errors.As(err, &ae) || ae.Envelope.Kind != api.KindDraining {
		t.Fatalf("post-drain error = %v, want draining envelope", err)
	}
	if ae.Envelope.TraceID != tid {
		t.Fatalf("draining envelope trace_id = %q, want %q", ae.Envelope.TraceID, tid)
	}
	if !llm.IsTransient(err) {
		t.Fatalf("draining 503 not transient: %v", err)
	}
}

func TestBaseURLNormalized(t *testing.T) {
	c := New("http://x///")
	if !strings.HasSuffix(c.BaseURL(), "//x") && c.BaseURL() != "http://x" {
		t.Fatalf("BaseURL = %q, want trailing slashes stripped", c.BaseURL())
	}
}
