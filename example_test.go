package askit_test

import (
	"context"
	"fmt"

	askit "repro"
)

// The sentiment example of the paper's §III-A, using a list task the
// simulated model solves deterministically.
func Example() {
	ctx := context.Background()
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		panic(err)
	}
	v, err := ai.Ask(ctx, askit.List(askit.Float),
		"Sort the numbers {{ns}} in ascending order.",
		askit.Args{"ns": []any{3.0, 1.0, 2.0}})
	if err != nil {
		panic(err)
	}
	fmt.Println(v)
	// Output: [1 2 3]
}

// Defining a function and compiling it to generated code (§III-D).
func ExampleFunc_Compile() {
	ctx := context.Background()
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	sim.Noise.CodegenBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		panic(err)
	}
	fact, err := ai.Define(askit.Float, "Calculate the factorial of {{n}}.",
		askit.WithParamTypes(askit.Field{Name: "n", Type: askit.Float}),
		askit.WithTests(askit.Example{Input: askit.Args{"n": 5.0}, Output: 120.0}))
	if err != nil {
		panic(err)
	}
	if err := fact.Compile(ctx); err != nil {
		panic(err)
	}
	v, err := fact.Call(ctx, askit.Args{"n": 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f %v\n", v, fact.IsCompiled())
	// Output: 3628800 true
}

// AskAs derives the AskIt type from the Go type parameter.
func ExampleAskAs() {
	ctx := context.Background()
	sim := askit.NewSimClient(1)
	sim.Noise.DirectBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		panic(err)
	}
	prime, err := askit.AskAs[bool](ctx, ai,
		"Check if {{n}} is a prime number.", askit.Args{"n": 97})
	if err != nil {
		panic(err)
	}
	fmt.Println(prime)
	// Output: true
}
