package askit

// One benchmark per table and figure of the paper's evaluation (§IV),
// as required by the experiment index in DESIGN.md, plus micro
// benchmarks for the pipeline's hot paths. Each table/figure bench runs
// the full experiment per iteration and reports the paper's headline
// metric as a custom unit, so `go test -bench=.` regenerates every
// result.

import (
	"context"
	"testing"

	"repro/internal/exp"
)

// BenchmarkTable2 regenerates Table II (50 common coding tasks;
// paper: mean 7.56 LOC TypeScript, 6.52 Python).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(exp.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanLOC, "meanLOC")
		b.ReportMetric(float64(res.Failures), "failures")
	}
}

// BenchmarkFig5 regenerates Figure 5 (HumanEval LOC scatter; paper:
// 84.8 % success, ratio 1.27x, 35.3 % shorter).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig5(exp.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SuccessRate, "success%")
		b.ReportMetric(res.Ratio, "gen/hand")
	}
}

// BenchmarkFig6 regenerates Figure 6 (prompt length reduction;
// paper: 16.14 % mean).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6(exp.Config{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPercent, "reduction%")
	}
}

// BenchmarkFig7 regenerates Figure 7 (type census).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunFig7()
		b.ReportMetric(float64(res.TopLevel["string"]), "top-string")
		b.ReportMetric(float64(res.AllTypes["literal"]), "all-literal")
	}
}

// BenchmarkTable3 regenerates Table III on the full 1319-problem test
// split (paper TS: latency 13.28 s, exec 49.11 µs, speedup 275,092x).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable3(exp.Config{Seed: 42, Workers: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupRatio, "speedup")
		b.ReportMetric(res.AvgLatency.Seconds(), "latency-s")
		b.ReportMetric(float64(res.AvgExecTime.Microseconds()), "exec-us")
		b.ReportMetric(float64(res.DirectSolved), "direct")
		b.ReportMetric(float64(res.Generated), "generated")
	}
}

// BenchmarkAblationA2 measures the feedback-retry loop's attempt economy
// against blind retries (DESIGN.md A2).
func BenchmarkAblationA2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblationA2(exp.Config{Seed: 7}, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.FeedbackAttempts)/float64(res.Trials), "fb-attempts/task")
		b.ReportMetric(float64(res.BlindAttempts)/float64(res.Trials), "blind-attempts/task")
	}
}

// ---------------------------------------------------------------------------
// Micro benchmarks: the hot paths of a single call

// BenchmarkAskDirect measures one full direct interaction: prompt
// build, simulated completion, extraction, validation, decode.
func BenchmarkAskDirect(b *testing.B) {
	sim := NewSimClient(1)
	sim.Noise.DirectBlind = 0
	ai, err := New(Options{Client: sim})
	if err != nil {
		b.Fatal(err)
	}
	args := Args{"ns": []any{5.0, 3.0, 9.0, 1.0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ai.Ask(context.Background(), Float,
			"Find the largest number in {{ns}}.", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledFuncCall measures a post-Compile call — the fast
// path whose gap to BenchmarkAskDirect's *simulated latency* is the
// entire point of Table III.
func BenchmarkCompiledFuncCall(b *testing.B) {
	sim := NewSimClient(1)
	sim.Noise.CodegenBlind = 0
	ai, err := New(Options{Client: sim})
	if err != nil {
		b.Fatal(err)
	}
	f, err := ai.Define(Float, "Calculate the factorial of {{n}}.",
		WithParamTypes(Field{Name: "n", Type: Float}),
		WithTests(Example{Input: Args{"n": 5.0}, Output: 120.0}))
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Compile(context.Background()); err != nil {
		b.Fatal(err)
	}
	args := Args{"n": 12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Call(context.Background(), args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledFuncCallTreeWalker is the same call on the reference
// AST tree-walking engine — the seed implementation — kept as the
// baseline the compiled closure engine is measured against.
func BenchmarkCompiledFuncCallTreeWalker(b *testing.B) {
	sim := NewSimClient(1)
	sim.Noise.CodegenBlind = 0
	ai, err := New(Options{Client: sim, TreeWalker: true})
	if err != nil {
		b.Fatal(err)
	}
	f, err := ai.Define(Float, "Calculate the factorial of {{n}}.",
		WithParamTypes(Field{Name: "n", Type: Float}),
		WithTests(Example{Input: Args{"n": 5.0}, Output: 120.0}))
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Compile(context.Background()); err != nil {
		b.Fatal(err)
	}
	args := Args{"n": 12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Call(context.Background(), args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefineCompile measures the whole codegen loop (prompt,
// synthesis, parse, check, example tests) without disk caching.
func BenchmarkDefineCompile(b *testing.B) {
	sim := NewSimClient(1)
	sim.Noise.CodegenBlind = 0
	ai, err := New(Options{Client: sim})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := ai.Define(Str, "Reverse the string {{s}}.",
			WithParamTypes(Field{Name: "s", Type: Str}),
			WithTests(Example{Input: Args{"s": "ab"}, Output: "ba"}))
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Compile(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
