package askit_test

import (
	"context"
	"fmt"
	"testing"

	askit "repro"
)

func newBatchAI(t *testing.T) *askit.AskIt {
	t.Helper()
	sim := askit.NewSimClient(7)
	sim.Noise.DirectBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		t.Fatal(err)
	}
	return ai
}

func TestAskBatchOrdersResults(t *testing.T) {
	ai := newBatchAI(t)
	var argsList []askit.Args
	for i := 0; i < 20; i++ {
		argsList = append(argsList, askit.Args{"s": fmt.Sprintf("item-%02d", i)})
	}
	results, err := ai.AskBatch(context.Background(), askit.Str,
		"Reverse the string {{s}}.", argsList, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(argsList) {
		t.Fatalf("got %d results, want %d", len(results), len(argsList))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("element %d: %v", i, r.Err)
			continue
		}
		if want := reverseString(fmt.Sprintf("item-%02d", i)); r.Value != want {
			t.Errorf("element %d: value = %v, want %q", i, r.Value, want)
		}
	}
}

func reverseString(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

func TestCallBatchCoalescesDuplicates(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Float, "Calculate the factorial of {{n}}.")
	if err != nil {
		t.Fatal(err)
	}
	// 64 elements, only 4 distinct: the answer cache should serve the
	// duplicates without extra model traffic.
	var argsList []askit.Args
	for i := 0; i < 64; i++ {
		argsList = append(argsList, askit.Args{"n": float64(3 + i%4)})
	}
	results := f.CallBatch(context.Background(), argsList, 16)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("element %d: %v", r.Index, r.Err)
		}
	}
	if results[0].Value != 6.0 || results[1].Value != 24.0 {
		t.Errorf("values = %v, %v", results[0].Value, results[1].Value)
	}
	s := ai.Stats()
	if s.AnswerMisses != 4 {
		t.Errorf("answer misses = %d, want 4 (one per distinct element)", s.AnswerMisses)
	}
	if s.AnswerHits+s.AnswerCoalesced != 60 {
		t.Errorf("hits+coalesced = %d+%d, want 60", s.AnswerHits, s.AnswerCoalesced)
	}
}

func TestCallBatchCanceledContext(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Str, "Reverse the string {{s}}.")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := f.CallBatch(ctx, []askit.Args{{"s": "a"}, {"s": "b"}}, 2)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("element %d succeeded under canceled context", r.Index)
		}
	}
}

func TestCallBatchEmpty(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Str, "Reverse the string {{s}}.")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CallBatch(context.Background(), nil, 4); len(got) != 0 {
		t.Errorf("results = %v", got)
	}
}
