package askit_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	askit "repro"
	"repro/internal/llm"
)

func newBatchAI(t *testing.T) *askit.AskIt {
	t.Helper()
	sim := askit.NewSimClient(7)
	sim.Noise.DirectBlind = 0
	ai, err := askit.New(askit.Options{Client: sim})
	if err != nil {
		t.Fatal(err)
	}
	return ai
}

func TestAskBatchOrdersResults(t *testing.T) {
	ai := newBatchAI(t)
	var argsList []askit.Args
	for i := 0; i < 20; i++ {
		argsList = append(argsList, askit.Args{"s": fmt.Sprintf("item-%02d", i)})
	}
	results, err := ai.AskBatch(context.Background(), askit.Str,
		"Reverse the string {{s}}.", argsList, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(argsList) {
		t.Fatalf("got %d results, want %d", len(results), len(argsList))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Errorf("element %d: %v", i, r.Err)
			continue
		}
		if want := reverseString(fmt.Sprintf("item-%02d", i)); r.Value != want {
			t.Errorf("element %d: value = %v, want %q", i, r.Value, want)
		}
	}
}

func reverseString(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

func TestCallBatchCoalescesDuplicates(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Float, "Calculate the factorial of {{n}}.")
	if err != nil {
		t.Fatal(err)
	}
	// 64 elements, only 4 distinct: the answer cache should serve the
	// duplicates without extra model traffic.
	var argsList []askit.Args
	for i := 0; i < 64; i++ {
		argsList = append(argsList, askit.Args{"n": float64(3 + i%4)})
	}
	results := f.CallBatch(context.Background(), argsList, 16)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("element %d: %v", r.Index, r.Err)
		}
	}
	if results[0].Value != 6.0 || results[1].Value != 24.0 {
		t.Errorf("values = %v, %v", results[0].Value, results[1].Value)
	}
	s := ai.Stats()
	if s.AnswerMisses != 4 {
		t.Errorf("answer misses = %d, want 4 (one per distinct element)", s.AnswerMisses)
	}
	if s.AnswerHits+s.AnswerCoalesced != 60 {
		t.Errorf("hits+coalesced = %d+%d, want 60", s.AnswerHits, s.AnswerCoalesced)
	}
}

func TestCallBatchCanceledContext(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Str, "Reverse the string {{s}}.")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := f.CallBatch(ctx, []askit.Args{{"s": "a"}, {"s": "b"}}, 2)
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("element %d succeeded under canceled context", r.Index)
		}
	}
}

// gateClient wedges every Complete call until its context dies,
// signalling each arrival on started.
type gateClient struct {
	started chan struct{}
}

func (c *gateClient) Complete(ctx context.Context, _ llm.Request) (llm.Response, error) {
	c.started <- struct{}{}
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

func TestCallBatchMidBatchCancellation(t *testing.T) {
	// Two workers wedge on the first two elements; the dispatcher is
	// blocked handing out the third when the context is canceled. Every
	// not-yet-started element must come back with ctx.Err(), never a
	// zero-valued result — and the batch must return promptly instead
	// of waiting out the worker queue.
	const elements = 8
	client := &gateClient{started: make(chan struct{}, elements)}
	ai, err := askit.New(askit.Options{Client: client})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ai.Define(askit.Str, "Reverse the string {{s}}.")
	if err != nil {
		t.Fatal(err)
	}
	var argsList []askit.Args
	for i := 0; i < elements; i++ {
		argsList = append(argsList, askit.Args{"s": fmt.Sprintf("item-%d", i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	resultsCh := make(chan []askit.BatchResult, 1)
	go func() { resultsCh <- f.CallBatch(ctx, argsList, 2) }()

	// Wait until both workers are wedged inside the model call, then
	// cancel mid-batch.
	<-client.started
	<-client.started
	cancel()

	var results []askit.BatchResult
	select {
	case results = <-resultsCh:
	case <-time.After(5 * time.Second):
		t.Fatal("CallBatch did not return after mid-batch cancellation")
	}
	if len(results) != elements {
		t.Fatalf("got %d results, want %d", len(results), elements)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("element %d: nil error (value %v) after cancellation", i, r.Value)
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("element %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Index != i {
			t.Errorf("element %d carries index %d", i, r.Index)
		}
	}
}

func TestCallBatchEmpty(t *testing.T) {
	ai := newBatchAI(t)
	f, err := ai.Define(askit.Str, "Reverse the string {{s}}.")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CallBatch(context.Background(), nil, 4); len(got) != 0 {
		t.Errorf("results = %v", got)
	}
}
