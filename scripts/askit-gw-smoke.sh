#!/usr/bin/env bash
# Cluster-tier smoke: boot three askitd replicas over ONE shared
# artifact store, front them with askit-gw, and prove the fleet
# contracts end to end — install broadcast warms every replica off a
# single compile, affinity routing serves calls through the gateway,
# and after the compiling replica is hard-killed a warm call still
# succeeds from a second replica with zero codegen LLM calls anywhere.
# JSON assertions go through askit-smoke (the typed-client helper);
# shell keeps the process lifecycle. CI runs this against the real
# binaries; locally:
#
#   go build -o /tmp/askitd ./cmd/askitd
#   go build -o /tmp/askit-gw ./cmd/askit-gw
#   go build -o /tmp/askit-smoke ./cmd/askit-smoke
#   ASKITD=/tmp/askitd ASKIT_GW=/tmp/askit-gw ASKIT_SMOKE=/tmp/askit-smoke \
#     scripts/askit-gw-smoke.sh
set -euo pipefail

ASKITD="${ASKITD:-./askitd}"
ASKIT_GW="${ASKIT_GW:-./askit-gw}"
SMOKE="${ASKIT_SMOKE:-./askit-smoke}"
STORE="${STORE:-$(mktemp -d /tmp/askit-gw-smoke-XXXXXX)}"
LOGDIR="$STORE/logs"
mkdir -p "$LOGDIR"

PORTS=(18331 18332 18333)
GW_ADDR="${GW_ADDR:-127.0.0.1:18339}"
GW_URL="http://$GW_ADDR"

PIDS=()
cleanup() { for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done; }
trap cleanup EXIT

fail() {
  echo "askit-gw-smoke: FAIL: $*" >&2
  tail -20 "$LOGDIR"/*.log >&2 || true
  exit 1
}

# wait_healthy <pid> <url> <health-cmd...>: poll until the helper
# passes, requiring OUR process to stay alive so a stale port owner
# cannot answer for it.
wait_healthy() {
  local pid=$1 url=$2; shift 2
  for _ in $(seq 1 50); do
    kill -0 "$pid" 2>/dev/null || fail "process for $url died during startup"
    if "$SMOKE" -url "$url" "$@" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  fail "$url never became healthy"
}

# --- boot the fleet ---------------------------------------------------------
REPLICA_URLS=()
REPLICA_PIDS=()
for port in "${PORTS[@]}"; do
  "$ASKITD" -addr "127.0.0.1:$port" -store "$STORE" >"$LOGDIR/askitd-$port.log" 2>&1 &
  pid=$!
  disown "$pid" # no job-control obituary when the chaos kill reaps it
  PIDS+=("$pid"); REPLICA_PIDS+=("$pid"); REPLICA_URLS+=("http://127.0.0.1:$port")
done
for i in "${!REPLICA_URLS[@]}"; do
  wait_healthy "${REPLICA_PIDS[$i]}" "${REPLICA_URLS[$i]}" health
done

"$ASKIT_GW" -addr "$GW_ADDR" -health-interval 100ms \
  -replicas "$(IFS=,; echo "${REPLICA_URLS[*]}")" >"$LOGDIR/askit-gw.log" 2>&1 &
GW_PID=$!
PIDS+=("$GW_PID")
wait_healthy "$GW_PID" "$GW_URL" gw-health -min-up 3

# --- route work through the gateway -----------------------------------------
"$SMOKE" -url "$GW_URL" ask -template 'Calculate the factorial of {{n}}.' \
  -args '{"n":5}' -want 120 || fail "gateway-routed ask"

install_body='{"name":"fact","type":"number",
  "template":"Calculate the factorial of {{n}}.",
  "params":[{"name":"n","type":"number"}],
  "tests":[{"input":{"n":5},"output":120}]}'
"$SMOKE" -url "$GW_URL" install -body "$install_body" -want-compiled ||
  fail "gateway install"
"$SMOKE" -url "$GW_URL" call -func fact -args '{"n":10}' -want 3628800 ||
  fail "gateway-routed call"

# The install fanned out to every up replica over the shared store:
# exactly one replica compiled (one codegen conversation fleet-wide),
# the others warm-started from the store's artifact.
home_idx=""
for i in "${!REPLICA_URLS[@]}"; do
  if "$SMOKE" -url "${REPLICA_URLS[$i]}" stats -counter codegen_llm_calls=1 2>/dev/null; then
    [ -z "$home_idx" ] || fail "more than one replica ran codegen for one install"
    home_idx=$i
  else
    "$SMOKE" -url "${REPLICA_URLS[$i]}" stats -counter codegen_llm_calls=0 ||
      fail "replica ${REPLICA_URLS[$i]} has an unexpected codegen count"
  fi
done
[ -n "$home_idx" ] || fail "no replica compiled the broadcast install"

# --- kill the compiling replica ---------------------------------------------
# Hard kill (no drain): the gateway must absorb the loss via health
# polling + dispatch retries, not replica cooperation.
kill -9 "${REPLICA_PIDS[$home_idx]}"
for _ in $(seq 1 50); do
  if ! "$SMOKE" -url "$GW_URL" gw-health -min-up 3 2>/dev/null; then break; fi
  sleep 0.1
done
"$SMOKE" -url "$GW_URL" gw-health -min-up 2 || fail "gateway lost more than the killed replica"

# Warm call through the gateway: a surviving replica serves it from the
# artifact installed off the shared store — still zero codegen anywhere
# in the remaining fleet.
"$SMOKE" -url "$GW_URL" call -func fact -args '{"n":7}' -want 5040 ||
  fail "warm call after replica kill"
for i in "${!REPLICA_URLS[@]}"; do
  [ "$i" = "$home_idx" ] && continue
  "$SMOKE" -url "${REPLICA_URLS[$i]}" stats -counter codegen_llm_calls=0 ||
    fail "surviving replica ${REPLICA_URLS[$i]} recompiled instead of using the shared store"
done

# --- graceful gateway drain --------------------------------------------------
kill -TERM "$GW_PID"
code=0
wait "$GW_PID" || code=$?
[ "$code" -eq 0 ] || fail "gateway exited $code on SIGTERM (graceful drain failed)"

echo "askit-gw-smoke: OK (store: $STORE)"
