#!/usr/bin/env bash
# End-to-end smoke of the askitd daemon: boot it against an empty
# artifact store, serve one direct ask, install + call one compiled
# function, shut down gracefully on SIGTERM, then restart over the
# same store and require the warm install to make zero codegen LLM
# calls. Process lifecycle and the Prometheus text checks live here in
# shell; every JSON exchange goes through askit-smoke, the typed-client
# assertion helper, so the script cannot drift from the wire contract.
# CI runs this against the real binaries; it also works locally:
#
#   go build -o /tmp/askitd ./cmd/askitd
#   go build -o /tmp/askit-smoke ./cmd/askit-smoke
#   ASKITD=/tmp/askitd ASKIT_SMOKE=/tmp/askit-smoke scripts/askitd-smoke.sh
set -euo pipefail

ASKITD="${ASKITD:-./askitd}"
SMOKE="${ASKIT_SMOKE:-./askit-smoke}"
ADDR="${ADDR:-127.0.0.1:18321}"
STORE="${STORE:-$(mktemp -d /tmp/askitd-smoke-XXXXXX)}"
LOG="${LOG:-$STORE/askitd.log}"
URL="http://$ADDR"

DAEMON_PID=""
cleanup() { [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true; }
trap cleanup EXIT

fail() { echo "askitd-smoke: FAIL: $*" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

smoke() { "$SMOKE" -url "$URL" "$@"; }

wait_healthy() {
  for _ in $(seq 1 50); do
    # Require OUR daemon to be alive before trusting a healthz answer:
    # if it died on startup (port already in use), polling would
    # otherwise hand the rest of the script to whatever stale process
    # owns the port — and its store, not ours.
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon process died during startup (is $ADDR already in use?)"
    if smoke health 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  fail "daemon never became healthy"
}

start_daemon() {
  "$ASKITD" -addr "$ADDR" -store "$STORE" "$@" >>"$LOG" 2>&1 &
  DAEMON_PID=$!
  wait_healthy
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  local code=0
  wait "$DAEMON_PID" || code=$?
  DAEMON_PID=""
  [ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM (graceful drain failed)"
}

fact_template='Calculate the factorial of {{n}}.'
install_body='{"name":"fact","type":"number",
  "template":"Calculate the factorial of {{n}}.",
  "params":[{"name":"n","type":"number"}],
  "tests":[{"input":{"n":5},"output":120}]}'

# --- cold lifecycle ---------------------------------------------------------
start_daemon

smoke ask -template "$fact_template" -args '{"n":5}' -want 120 || fail "cold ask"
smoke install -body "$install_body" -want-compiled || fail "cold install"
smoke call -func fact -args '{"n":10}' -want 3628800 || fail "cold func call"

# Error mapping over the wire: an install reusing the name with a
# different spec must be a classified 409 name-taken envelope, not a
# silent replacement.
smoke install -want-kind name-taken -want-status 409 \
  -body '{"name":"fact","type":"string","template":"Reverse the string {{s}}.","params":[{"name":"s","type":"string"}]}' ||
  fail "conflicting install not mapped to 409 name-taken"

stop_daemon

# --- warm lifecycle ---------------------------------------------------------
start_daemon

smoke install -body "$install_body" -want-from-cache || fail "warm install missed the store"

# The warm daemon must have answered the install from the artifact
# store: zero codegen LLM calls, one store hit, and the stats payload
# carries the router section plus per-route latency.
smoke stats -counter codegen_llm_calls=0 -counter store_hits=1 -router -routes ||
  fail "warm stats contract"

smoke call -func fact -args '{"n":6}' -want 720 || fail "warm func call"

# Prometheus exposition: one scrape covers every tier. The counters
# must be nonzero after the traffic above — a registry that exists but
# nothing emits into would pass a names-only check. Text exposition is
# greppable by design; it stays in shell.
metrics=$(curl -fsS "$URL/metrics")
echo "$metrics" | grep -q '^askit_store_hits_total 1$' || fail "/metrics store hits wrong: $(echo "$metrics" | grep askit_store_hits_total)"
echo "$metrics" | grep -q '^askit_http_admitted_total [1-9]' || fail "/metrics admitted counter not incrementing"
echo "$metrics" | grep -q '^askit_http_request_duration_seconds_count{route="install"} [1-9]' || fail "/metrics has no per-route latency histogram"
echo "$metrics" | grep -q '^askit_router_requests_total' || fail "/metrics missing router series (shared registry broken)"
echo "$metrics" | grep -q '^askit_store_op_duration_seconds_count{op="load"} [1-9]' || fail "/metrics missing store op histogram"

# healthz stays 200 with store_degraded false while healthy.
smoke health -live || fail "healthz liveness contract"

stop_daemon

# --- chaos lifecycle --------------------------------------------------------
# Boot the same daemon over the same store with a seeded fault schedule
# injecting transient model faults, garbled completions, and store write
# failures. The daemon's breakers/retries must absorb them: answers stay
# correct, and SIGTERM still drains gracefully under fault load. Head
# sampling is forced to 1 so the tracing assertions below are
# deterministic.
start_daemon -fault-rate 0.2 -fault-seed 7 -trace-sample 1

smoke ask -template "$fact_template" -args '{"n":5}' -want 120 || fail "chaos ask(n=5)"
smoke ask -template "$fact_template" -args '{"n":6}' -want 720 || fail "chaos ask(n=6)"
smoke ask -template "$fact_template" -args '{"n":7}' -want 5040 || fail "chaos ask(n=7)"

# Install rides the store's warm path, but its Save now races injected
# write failures — the daemon must still come up compiled.
smoke install -body "$install_body" -want-compiled || fail "chaos install"
smoke call -func fact -args '{"n":8}' -want 40320 || fail "chaos func call"

# Tracing: a fresh ask (cold in this process's answer cache, so it must
# cross the router) echoes its trace id, and /v1/traces/{id} serves the
# complete span tree — HTTP root down to the backend attempt. askit-smoke
# retries the fetch: retention happens when the root span ends, which
# can race the client reading the response.
trace_id=$(smoke ask -template "$fact_template" -args '{"n":9}' -want 362880 -print-trace) ||
  fail "traced ask returned no X-Trace-Id"
smoke trace -id "$trace_id" -spans http_ask,ask,cache_probe,llm_complete,backend_attempt ||
  fail "trace $trace_id span tree incomplete"
smoke traces -contains "$trace_id" || fail "/v1/traces does not list $trace_id"

# Fire background traffic so the drain begins with faulted requests in
# flight; the daemon exiting 0 is the graceful-drain assertion.
for _ in $(seq 1 4); do
  ( for _ in $(seq 1 20); do
      curl -fsS "$URL/v1/ask" \
        -d '{"type":"string","template":"Reverse the string {{s}}.","args":{"s":"chaos"}}' \
        >/dev/null 2>&1 || true
    done ) &
done
sleep 0.2
stop_daemon
wait # reap the background curl loops

echo "askitd-smoke: OK (store: $STORE)"
