#!/usr/bin/env bash
# End-to-end smoke of the askitd daemon: boot it against an empty
# artifact store, serve one direct ask, install + call one compiled
# function, shut down gracefully on SIGTERM, then restart over the
# same store and require the warm install to make zero codegen LLM
# calls. CI runs this against the real binary; it also works locally:
#
#   go build -o /tmp/askitd ./cmd/askitd
#   ASKITD=/tmp/askitd scripts/askitd-smoke.sh
set -euo pipefail

ASKITD="${ASKITD:-./askitd}"
ADDR="${ADDR:-127.0.0.1:18321}"
STORE="${STORE:-$(mktemp -d /tmp/askitd-smoke-XXXXXX)}"
LOG="${LOG:-$STORE/askitd.log}"

DAEMON_PID=""
cleanup() { [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true; }
trap cleanup EXIT

fail() { echo "askitd-smoke: FAIL: $*" >&2; [ -f "$LOG" ] && tail -20 "$LOG" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 50); do
    # Require OUR daemon to be alive before trusting a healthz answer:
    # if it died on startup (port already in use), polling would
    # otherwise hand the rest of the script to whatever stale process
    # owns the port — and its store, not ours.
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon process died during startup (is $ADDR already in use?)"
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "daemon never became healthy"
}

start_daemon() {
  "$ASKITD" -addr "$ADDR" -store "$STORE" "$@" >>"$LOG" 2>&1 &
  DAEMON_PID=$!
  wait_healthy
}

stop_daemon() {
  kill -TERM "$DAEMON_PID"
  local code=0
  wait "$DAEMON_PID" || code=$?
  DAEMON_PID=""
  [ "$code" -eq 0 ] || fail "daemon exited $code on SIGTERM (graceful drain failed)"
}

install_body='{"name":"fact","type":"number",
  "template":"Calculate the factorial of {{n}}.",
  "params":[{"name":"n","type":"number"}],
  "tests":[{"input":{"n":5},"output":120}]}'

# --- cold lifecycle ---------------------------------------------------------
start_daemon

ask=$(curl -fsS "http://$ADDR/v1/ask" \
  -d '{"type":"number","template":"Calculate the factorial of {{n}}.","args":{"n":5}}')
echo "$ask" | grep -q '"value":120' || fail "ask returned $ask"

install=$(curl -fsS "http://$ADDR/v1/funcs" -d "$install_body")
echo "$install" | grep -q '"compiled":true' || fail "cold install returned $install"

call=$(curl -fsS "http://$ADDR/v1/funcs/fact/call" -d '{"args":{"n":10}}')
echo "$call" | grep -q '"value":3628800' || fail "func call returned $call"

# Error mapping over the wire: an install reusing the name with a
# different spec must be a 409 conflict, not a silent replacement.
conflict=$(curl -sS -o /dev/null -w '%{http_code}' "http://$ADDR/v1/funcs" \
  -d '{"name":"fact","type":"string","template":"Reverse the string {{s}}.","params":[{"name":"s","type":"string"}]}')
[ "$conflict" = "409" ] || fail "conflicting install returned HTTP $conflict, want 409"

stop_daemon

# --- warm lifecycle ---------------------------------------------------------
start_daemon

warm=$(curl -fsS "http://$ADDR/v1/funcs" -d "$install_body")
echo "$warm" | grep -q '"from_cache":true' || fail "warm install returned $warm (want from_cache)"

# Anchored on the delimiter so "store_hits":12 cannot pass as ":1".
stats=$(curl -fsS "http://$ADDR/v1/stats")
echo "$stats" | grep -q '"codegen_llm_calls":0[,}]' || fail "warm daemon made codegen LLM calls: $stats"
echo "$stats" | grep -q '"store_hits":1[,}]' || fail "warm daemon missed the store: $stats"
# The stats payload now carries the router section and per-route latency.
echo "$stats" | grep -q '"router":{' || fail "stats has no router section: $stats"
echo "$stats" | grep -q '"routes":{' || fail "stats has no per-route section: $stats"

call=$(curl -fsS "http://$ADDR/v1/funcs/fact/call" -d '{"args":{"n":6}}')
echo "$call" | grep -q '"value":720' || fail "warm func call returned $call"

# Prometheus exposition: one scrape covers every tier. The counters
# must be nonzero after the traffic above — a registry that exists but
# nothing emits into would pass a names-only check.
metrics=$(curl -fsS "http://$ADDR/metrics")
echo "$metrics" | grep -q '^askit_store_hits_total 1$' || fail "/metrics store hits wrong: $(echo "$metrics" | grep askit_store_hits_total)"
echo "$metrics" | grep -q '^askit_http_admitted_total [1-9]' || fail "/metrics admitted counter not incrementing"
echo "$metrics" | grep -q '^askit_http_request_duration_seconds_count{route="install"} [1-9]' || fail "/metrics has no per-route latency histogram"
echo "$metrics" | grep -q '^askit_router_requests_total' || fail "/metrics missing router series (shared registry broken)"
echo "$metrics" | grep -q '^askit_store_op_duration_seconds_count{op="load"} [1-9]' || fail "/metrics missing store op histogram"

# healthz reports store degradation as a flag while staying 200.
healthz=$(curl -fsS "http://$ADDR/healthz")
echo "$healthz" | grep -q '"store_degraded":false' || fail "healthz has no store_degraded flag: $healthz"

stop_daemon

# --- chaos lifecycle --------------------------------------------------------
# Boot the same daemon over the same store with a seeded fault schedule
# injecting transient model faults, garbled completions, and store write
# failures. The daemon's breakers/retries must absorb them: answers stay
# correct, and SIGTERM still drains gracefully under fault load. Head
# sampling is forced to 1 so the tracing assertions below are
# deterministic.
start_daemon -fault-rate 0.2 -fault-seed 7 -trace-sample 1

for n in 5 6 7; do
  want=$((n == 5 ? 120 : n == 6 ? 720 : 5040))
  ask=$(curl -fsS "http://$ADDR/v1/ask" \
    -d '{"type":"number","template":"Calculate the factorial of {{n}}.","args":{"n":'"$n"'}}')
  echo "$ask" | grep -q "\"value\":$want" || fail "chaos ask(n=$n) returned $ask"
done

# Install rides the store's warm path, but its Save now races injected
# write failures — the daemon must still come up compiled.
chaos_install=$(curl -fsS "http://$ADDR/v1/funcs" -d "$install_body")
echo "$chaos_install" | grep -q '"compiled":true' || fail "chaos install returned $chaos_install"

call=$(curl -fsS "http://$ADDR/v1/funcs/fact/call" -d '{"args":{"n":8}}')
echo "$call" | grep -q '"value":40320' || fail "chaos func call returned $call"

# Tracing: a fresh ask (cold in this process's answer cache, so it must
# cross the router) echoes its trace id, and /v1/traces/{id} serves the
# complete span tree — HTTP root down to the backend attempt.
trace_id=$(curl -fsS -D - -o /dev/null "http://$ADDR/v1/ask" \
  -d '{"type":"number","template":"Calculate the factorial of {{n}}.","args":{"n":9}}' |
  tr -d '\r' | awk 'tolower($1)=="x-trace-id:" {print $2}')
[ -n "$trace_id" ] || fail "traced ask returned no X-Trace-Id header"
trace=""
for _ in $(seq 1 20); do
  # Retention happens when the root span ends, which can race the client
  # reading the response; retry briefly.
  if trace=$(curl -fsS "http://$ADDR/v1/traces/$trace_id" 2>/dev/null); then break; fi
  sleep 0.1
done
for span in http_ask ask cache_probe llm_complete backend_attempt; do
  echo "$trace" | grep -q "\"name\":\"$span\"" || fail "trace $trace_id missing span $span: $trace"
done
listing=$(curl -fsS "http://$ADDR/v1/traces")
echo "$listing" | grep -q "\"trace_id\":\"$trace_id\"" || fail "/v1/traces does not list $trace_id: $listing"

# Fire background traffic so the drain begins with faulted requests in
# flight; the daemon exiting 0 is the graceful-drain assertion.
for _ in $(seq 1 4); do
  ( for _ in $(seq 1 20); do
      curl -fsS "http://$ADDR/v1/ask" \
        -d '{"type":"string","template":"Reverse the string {{s}}.","args":{"s":"chaos"}}' \
        >/dev/null 2>&1 || true
    done ) &
done
sleep 0.2
stop_daemon
wait # reap the background curl loops

echo "askitd-smoke: OK (store: $STORE)"
