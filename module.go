package askit

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Module groups define calls the way a source file groups them in the
// TypeScript implementation, supporting the paper's two ways to select
// codable tasks (§III-D): compile every define in the "file"
// (CompileAll) or only specific functions by name (CompileOnly).
type Module struct {
	ai *AskIt

	mu    sync.Mutex
	funcs []*Func
	names map[string]*Func
}

// Module returns a new, empty function group.
func (a *AskIt) Module() *Module {
	return &Module{ai: a, names: map[string]*Func{}}
}

// Define is AskIt.Define, additionally registering the function in the
// module under its (derived or fixed) name.
func (m *Module) Define(ret Type, promptTemplate string, opts ...DefineOption) (*Func, error) {
	f, err := m.ai.Define(ret, promptTemplate, opts...)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.names[f.Name()]; dup {
		return nil, fmt.Errorf("askit: module already defines %q", f.Name())
	}
	m.funcs = append(m.funcs, f)
	m.names[f.Name()] = f
	return f, nil
}

// Funcs returns the registered functions in definition order.
func (m *Module) Funcs() []*Func {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Func(nil), m.funcs...)
}

// Lookup returns the function registered under name.
func (m *Module) Lookup(name string) (*Func, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.names[name]
	return f, ok
}

// CompileAll compiles every function in the module (the "specify the
// source file" mode). Failures are collected; functions that fail stay
// in direct mode, exactly as an askit-compiled file would leave them.
func (m *Module) CompileAll(ctx context.Context) error {
	var errs []error
	for _, f := range m.Funcs() {
		if err := f.Compile(ctx); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", f.Name(), err))
		}
	}
	return joinErrors(errs)
}

// CompileOnly compiles just the named functions (the "specify the
// function name" mode). Unknown names are errors.
func (m *Module) CompileOnly(ctx context.Context, names ...string) error {
	var errs []error
	for _, name := range names {
		f, ok := m.Lookup(name)
		if !ok {
			errs = append(errs, fmt.Errorf("askit: module has no function %q", name))
			continue
		}
		if err := f.Compile(ctx); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return joinErrors(errs)
}

func joinErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return errors.New(strings.Join(msgs, "; "))
	}
}
